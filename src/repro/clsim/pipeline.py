"""Modeled event-stream transforms: batch coalescing and transfer overlap.

Two rewrites of recorded device-event streams, both pure functions of the
analytic performance model (no NumPy work happens here — the arrays were
already computed when the streams were captured):

* :func:`coalesce_events` — merge B structurally-identical streams (the
  same plan launched over B requests' bindings) into the stream one
  *batched* launch would produce: each transfer pays the link latency
  once over the summed payload, each kernel pays the launch overhead
  once.  This is the modeled win the service's micro-batching dispatch
  amortizes (ROADMAP "Request batching and async pipelining").

* :func:`overlap_events` — re-time per-chunk streams onto a device with
  separate host-to-device, compute, and device-to-host engines (the
  dual-DMA layout of the paper's Tesla M2050), bounded to ``depth``
  chunks in flight.  Chunk k+1's uploads start while chunk k computes —
  classic double buffering — so the stream's *makespan* drops below the
  serial sum while every per-category total is unchanged.

Both return events whose ``ts_seconds`` describe the rewritten timeline;
:meth:`~repro.clsim.events.EventLog.record` preserves pre-stamped
timestamps, so the results can be replayed into a live environment's log
and flow into timing summaries and Chrome-trace lanes unmodified.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

from .device import DeviceSpec
from .events import Event, EventKind, EventLog
from .perfmodel import transfer_seconds

__all__ = ["coalesce_events", "overlap_events", "makespan"]

# Which engine executes each event category under the overlapped model.
# Builds share the compute engine: compilation occupies the device core.
_LANES = {
    EventKind.DEV_WRITE: "h2d",
    EventKind.KERNEL: "compute",
    EventKind.BUILD: "compute",
    EventKind.DEV_READ: "d2h",
}

_TRANSFERS = (EventKind.DEV_WRITE, EventKind.DEV_READ)


def _event_lists(streams: Sequence[EventLog | Sequence[Event]],
                 ) -> list[list[Event]]:
    return [list(s.events) if isinstance(s, EventLog) else list(s)
            for s in streams]


def makespan(events: Iterable[Event]) -> float:
    """Timeline end: the latest modeled completion across all events."""
    return max(((e.ts_seconds or 0.0) + e.sim_seconds for e in events),
               default=0.0)


def coalesce_events(streams: Sequence[EventLog | Sequence[Event]],
                    device: DeviceSpec) -> list[Event]:
    """Merge B identical-plan event streams into one batched stream.

    The streams must be position-wise congruent (same kinds in the same
    order — guaranteed when they are captures of the same plan over
    different bindings).  Position ``i`` of the result models the batched
    launch of every stream's event ``i``:

    * transfers move the stacked payload in one DMA — latency is paid
      once, the bandwidth term covers the summed bytes;
    * kernels run one launch over the stacked ND-range — the per-launch
      overhead is paid once, the work terms add (exact, because the
      identical per-member costs make ``max(mem, flop)`` distribute over
      the sum);
    * builds happen once (a batch shares its program).

    Timestamps are cleared: the result is an in-order stream ready for
    sequential re-recording.
    """
    lists = _event_lists(streams)
    if not lists:
        return []
    if len(lists) == 1:
        return [replace(e, ts_seconds=None) for e in lists[0]]
    length = len(lists[0])
    for events in lists[1:]:
        if len(events) != length:
            raise ValueError(
                f"cannot coalesce streams of different shapes: "
                f"{[len(ev) for ev in lists]} events")
    merged: list[Event] = []
    batch = len(lists)
    for position in zip(*lists):
        first = position[0]
        if any(e.kind is not first.kind for e in position[1:]):
            raise ValueError(
                f"cannot coalesce mismatched event kinds at position "
                f"{len(merged)}: {[e.kind.value for e in position]}")
        nbytes = sum(e.nbytes for e in position)
        wall = sum(e.wall_seconds for e in position)
        if first.kind in _TRANSFERS:
            sim = transfer_seconds(nbytes, device)
        elif first.kind is EventKind.KERNEL:
            saved = (batch - 1) * device.kernel_launch_overhead
            sim = sum(e.sim_seconds for e in position) - saved
        else:  # BUILD: compile once for the whole batch
            sim = first.sim_seconds
            nbytes = first.nbytes
            wall = first.wall_seconds
        merged.append(Event(first.kind, f"{first.name}[x{batch}]",
                            nbytes, sim_seconds=sim, wall_seconds=wall,
                            ts_seconds=None))
    return merged


def overlap_events(chunk_streams: Sequence[EventLog | Sequence[Event]],
                   depth: int = 2) -> list[Event]:
    """Re-time per-chunk streams onto overlapped transfer/compute engines.

    Models a device with three independent in-order engines — an
    upload DMA (``h2d``), the compute core, and a readback DMA (``d2h``)
    — and at most ``depth`` chunks resident at once (``depth=2`` is
    double buffering: chunk k+1 may begin uploading only after chunk
    k-1 fully completed and released its buffers).

    Within a chunk, program order is the dependency chain (uploads feed
    the kernel, the kernel feeds the readback), so each event starts no
    earlier than its predecessor's completion; across chunks, only
    engine occupancy and the residency bound serialize.  Every event
    keeps its modeled duration — the rewrite changes *when*, never *how
    long*, so per-category totals (Fig 5) are invariant and the win
    shows up purely as makespan.

    Returns the events of all chunks stamped onto the overlapped
    timeline, sorted by start time.
    """
    if depth < 1:
        raise ValueError(f"pipeline depth must be >= 1: {depth}")
    lists = _event_lists(chunk_streams)
    lane_free = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0}
    chunk_done: list[float] = []
    out: list[Event] = []
    for index, events in enumerate(lists):
        gate = chunk_done[index - depth] if index >= depth else 0.0
        prev_end = gate
        for event in events:
            lane = _LANES[event.kind]
            start = max(lane_free[lane], prev_end)
            end = start + event.sim_seconds
            lane_free[lane] = end
            prev_end = end
            out.append(replace(event, ts_seconds=start))
        chunk_done.append(prev_end)
    out.sort(key=lambda e: (e.ts_seconds or 0.0))
    return out
