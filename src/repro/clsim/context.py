"""Simulated OpenCL context: a device binding plus its memory allocator."""

from __future__ import annotations

import numpy as np

from .buffer import Allocator, Buffer, BufferPool
from .device import DeviceSpec

__all__ = ["Context"]


class Context:
    """Owns the allocator for one simulated device.

    ``dry_run=True`` makes every buffer created through this context dry
    (tracked but storage-free), which is how full-paper-scale experiments
    are planned without 2.6 GB arrays: the strategies run unmodified and
    the allocator, event log, and performance model still see exact sizes.

    ``backend`` selects how kernels execute: ``"vectorized"`` (default)
    runs each kernel's NumPy executor; ``"interpreted"`` parses the
    kernel's generated OpenCL C and executes it work-item by work-item
    through :mod:`repro.clc` — far slower, but it proves the emitted
    source end to end.

    ``pooling=True`` attaches a :class:`~repro.clsim.buffer.BufferPool`:
    released buffers park their reservations in size-class free lists and
    subsequent requests recycle them — the warm-execution path.  Pooled
    allocations reserve the size-class capacity (>= the request), so cold
    paper artifacts must run with pooling off (the default).
    """

    BACKENDS = ("vectorized", "interpreted")

    def __init__(self, device: DeviceSpec, *, dry_run: bool = False,
                 backend: str = "vectorized", pooling: bool = False,
                 registry=None):
        if backend not in self.BACKENDS:
            from ..errors import CLError
            raise CLError(f"unknown backend {backend!r}; "
                          f"choose from {self.BACKENDS}")
        self.device = device
        self.dry_run = dry_run
        self.backend = backend
        self.allocator = Allocator(device, registry=registry)
        self.pool = (BufferPool(self.allocator, registry=registry)
                     if pooling else None)

    def create_buffer(self, nbytes: int, label: str = "") -> Buffer:
        """Allocate device global memory (raises CLOutOfMemoryError)."""
        if self.pool is not None:
            buf = self.pool.acquire(nbytes, label, dry=self.dry_run)
            if buf is not None:
                return buf
            return Buffer(self.allocator, nbytes, label=label,
                          dry=self.dry_run,
                          capacity=self.pool.capacity_for(nbytes),
                          pool=self.pool)
        return Buffer(self.allocator, nbytes, label=label, dry=self.dry_run)

    def buffer_like(self, array: np.ndarray, label: str = "") -> Buffer:
        return self.create_buffer(array.nbytes, label)

    @property
    def mem_in_use(self) -> int:
        return self.allocator.current_bytes

    @property
    def mem_high_water(self) -> int:
        return self.allocator.peak_bytes
