"""Analytic device performance model.

Real OpenCL hardware is unavailable, so simulated event durations come from
a roofline-style model: a transfer costs latency plus bytes over the
host-device link; a kernel costs launch overhead plus the larger of its
memory-traffic time and its arithmetic time, with a penalty once a fused
kernel's register working set spills to global memory.

Only *relative* behaviour matters for reproducing the paper's Fig 5 —
which strategy wins on which device, and by roughly what factor — and that
is fully determined by the event streams the strategies generate (bytes
moved, kernels launched, FLOPs performed) combined with these rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["KernelCost", "transfer_seconds", "kernel_seconds",
           "build_seconds"]


@dataclass(frozen=True)
class KernelCost:
    """Resource usage of one kernel launch, supplied by the strategy.

    ``global_bytes`` is total global-memory traffic (reads + writes);
    ``flops`` the floating-point work; ``register_words`` the per-work-item
    live intermediate count for the spill model (0 disables it);
    ``elements`` the ND-range size (falls back to an estimate from
    ``global_bytes`` when omitted).
    """

    global_bytes: int
    flops: int
    register_words: int = 0
    itemsize: int = 8
    elements: int = 0

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            self.global_bytes + other.global_bytes,
            self.flops + other.flops,
            max(self.register_words, other.register_words),
            max(self.itemsize, other.itemsize),
            max(self.elements, other.elements),
        )


def transfer_seconds(nbytes: int, device: DeviceSpec) -> float:
    """Host->device or device->host transfer time."""
    return device.link_latency + nbytes / device.link_bandwidth


def kernel_seconds(cost: KernelCost, device: DeviceSpec) -> float:
    """Roofline kernel-execution time with a register-spill penalty.

    When the fused kernel's live intermediates exceed the device's register
    budget, each excess word adds a spill store+load per element, which we
    fold in as extra global traffic.
    """
    traffic = cost.global_bytes
    if cost.register_words > device.registers_per_work_item:
        excess = cost.register_words - device.registers_per_work_item
        # Each spilled word costs one store and one load per element.
        elements = cost.elements or max(
            1, cost.global_bytes // (2 * max(1, cost.itemsize)))
        traffic += 2 * excess * cost.itemsize * elements
    mem_time = traffic / device.mem_bandwidth
    flop_time = cost.flops / device.flops(cost.itemsize)
    return device.kernel_launch_overhead + max(mem_time, flop_time)


def build_seconds(n_kernels: int, source_lines: int,
                  device: DeviceSpec) -> float:
    """Program build time: fixed overhead plus a small per-line cost."""
    return device.compile_overhead * n_kernels + 2.0e-5 * source_lines
