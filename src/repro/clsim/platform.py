"""Simulated OpenCL platform enumeration.

Edge's batch nodes expose two OpenCL runtime platforms — Intel (CPU) and
NVIDIA (GPU) — and the paper's evaluation targets both.  This module is the
``pyopencl.get_platforms()`` analogue over our device models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CLError
from .device import DeviceSpec, DeviceType, INTEL_X5660_CPU, NVIDIA_M2050_GPU

__all__ = ["Platform", "get_platforms", "find_device"]


@dataclass(frozen=True)
class Platform:
    """One OpenCL platform and its devices."""

    name: str
    vendor: str
    version: str
    devices: tuple[DeviceSpec, ...]


_PLATFORMS = (
    Platform(
        name="Intel(R) OpenCL",
        vendor="Intel(R) Corporation",
        version="OpenCL 1.1 (simulated)",
        devices=(INTEL_X5660_CPU,),
    ),
    Platform(
        name="NVIDIA CUDA",
        vendor="NVIDIA Corporation",
        version="OpenCL 1.1 CUDA 4.2 (simulated)",
        devices=(NVIDIA_M2050_GPU, NVIDIA_M2050_GPU),  # two GPUs per node
    ),
)


def get_platforms() -> tuple[Platform, ...]:
    """All simulated platforms on the (virtual) node."""
    return _PLATFORMS


def find_device(kind: str | DeviceType) -> DeviceSpec:
    """Look up a device by type name ('cpu' / 'gpu') or :class:`DeviceType`."""
    if isinstance(kind, str):
        try:
            kind = DeviceType(kind.lower())
        except ValueError:
            raise CLError(f"unknown device type {kind!r}; "
                          "expected 'cpu' or 'gpu'") from None
    for platform in _PLATFORMS:
        for device in platform.devices:
            if device.device_type is kind:
                return device
    raise CLError(f"no device of type {kind} available")  # pragma: no cover
