"""Simulated OpenCL device models.

The paper evaluates on two OpenCL targets: the dual-socket Intel Xeon X5660
("Westmere") CPU and the NVIDIA Tesla M2050 GPU of LLNL's Edge cluster.  No
OpenCL runtime is available in this environment, so we model the devices
explicitly: capacities and rates drive both the memory study (Fig 6 — the
M2050's 3 GB global memory bound) and the analytic timing model (Fig 5).

Rates are sustained-throughput figures for 2011/2012-era hardware taken from
the vendors' specifications derated to typical achievable values; absolute
numbers need only be plausible — the paper comparison is about *shape*
(orderings and crossovers), which these preserve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DeviceType", "DeviceSpec", "INTEL_X5660_CPU", "NVIDIA_M2050_GPU",
           "KIB", "MIB", "GIB"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class DeviceType(enum.Enum):
    """OpenCL device classes we model (CL_DEVICE_TYPE_*)."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Capacities and sustained rates of a simulated OpenCL device.

    ``link_bandwidth``/``link_latency`` describe the host<->device path: PCIe
    for a discrete GPU, an in-memory copy for the CPU runtime (the Intel
    OpenCL CPU driver still copies unless zero-copy flags are used, which
    the paper's framework does not use).
    """

    name: str
    device_type: DeviceType
    global_mem_bytes: int          # device global memory capacity
    mem_bandwidth: float           # sustained global-memory B/s inside kernels
    flops_fp64: float              # sustained double-precision FLOP/s
    flops_fp32: float              # sustained single-precision FLOP/s
    link_bandwidth: float          # host<->device transfer B/s
    link_latency: float            # per-transfer fixed cost, seconds
    kernel_launch_overhead: float  # per-enqueue fixed cost, seconds
    compile_overhead: float        # per-program build cost, seconds
    registers_per_work_item: int   # available registers before spilling
    preferred_vector_width: int = 4

    def flops(self, dtype_itemsize: int) -> float:
        """Sustained FLOP/s for a 4- or 8-byte element type."""
        return self.flops_fp64 if dtype_itemsize >= 8 else self.flops_fp32

    def fits(self, nbytes: int) -> bool:
        """Whether an allocation plan of ``nbytes`` fits in global memory."""
        return nbytes <= self.global_mem_bytes


# Two 2.8 GHz six-core Xeon X5660s per Edge node.  12 cores x 2.8 GHz x
# 4 DP FLOP/cycle (SSE) ~= 134 GFLOP/s peak; we derate to ~100.  Triple
# channel DDR3-1333 per socket is ~64 GB/s peak; ~21 GB/s sustained is
# typical for STREAM on this part.  "Transfers" under the Intel CPU runtime
# are memcpy-speed with negligible latency.
INTEL_X5660_CPU = DeviceSpec(
    name="Intel Xeon X5660 (Westmere, 2x6 cores)",
    device_type=DeviceType.CPU,
    global_mem_bytes=96 * GIB,
    mem_bandwidth=21.0e9,
    flops_fp64=100.0e9,
    flops_fp32=200.0e9,
    link_bandwidth=6.0e9,
    link_latency=5.0e-6,
    kernel_launch_overhead=25.0e-6,
    compile_overhead=0.05,
    registers_per_work_item=256,
    preferred_vector_width=2,
)

# NVIDIA Tesla M2050 (Fermi): 3 GB GDDR5, 148 GB/s peak (~120 sustained),
# 515 GFLOP/s DP / 1030 SP peak (~400/~800 sustained), dedicated x16 PCIe
# gen2 (~5.5 GB/s effective with pinned memory).
NVIDIA_M2050_GPU = DeviceSpec(
    name="NVIDIA Tesla M2050 (Fermi)",
    device_type=DeviceType.GPU,
    global_mem_bytes=3 * GIB,
    mem_bandwidth=120.0e9,
    flops_fp64=400.0e9,
    flops_fp32=800.0e9,
    link_bandwidth=5.5e9,
    link_latency=15.0e-6,
    kernel_launch_overhead=8.0e-6,
    compile_overhead=0.15,
    registers_per_work_item=63,
    preferred_vector_width=4,
)
