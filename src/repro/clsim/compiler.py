"""OpenCL C source assembly and structural validation.

Even though kernels execute through NumPy in this reproduction, the
framework still *generates real OpenCL C* — the artifact the paper's dynamic
kernel generator produces.  Tests validate the emitted source structurally
(balanced braces, well-formed kernel signatures, every parameter referenced)
so the code-generation path is exercised end to end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from ..errors import CLBuildError

__all__ = ["KernelSourceBuilder", "validate_source",
           "validate_source_cached", "PREAMBLE"]

# Enables double precision, as the paper's float64 RT data requires.
PREAMBLE = "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"


@dataclass
class KernelSourceBuilder:
    """Assembles a ``__kernel`` entry point from primitive source functions.

    The builder mirrors the paper's generator features: shared helper
    functions written once per primitive, parameters that are either global
    arrays or by-value scalars, source-level constant insertion, and a body
    of statements computed per element.
    """

    kernel_name: str
    helpers: list[str] = field(default_factory=list)
    _helper_names: set[str] = field(default_factory=set)
    params: list[tuple[str, str]] = field(default_factory=list)  # (decl, name)
    body: list[str] = field(default_factory=list)

    def add_helper(self, name: str, source: str) -> None:
        """Add a primitive's helper function once, no matter how many times
        the primitive appears in the fused network."""
        if name in self._helper_names:
            return
        self._helper_names.add(name)
        self.helpers.append(source.strip())

    def add_global_param(self, ctype: str, name: str,
                         const: bool = True) -> None:
        qual = "const " if const else ""
        self.params.append((f"__global {qual}{ctype}* {name}", name))

    def add_value_param(self, ctype: str, name: str) -> None:
        self.params.append((f"const {ctype} {name}", name))

    def add_statement(self, statement: str) -> None:
        self.body.append(statement.rstrip())

    def render(self) -> str:
        """Emit the complete OpenCL C translation unit."""
        decls = ",\n    ".join(decl for decl, _ in self.params)
        lines = [PREAMBLE]
        lines.extend(self.helpers)
        lines.append("")
        lines.append(f"__kernel void {self.kernel_name}(\n    {decls})")
        lines.append("{")
        lines.append("    const size_t gid = get_global_id(0);")
        for stmt in self.body:
            lines.append(f"    {stmt}")
        lines.append("}")
        return "\n".join(lines) + "\n"


@lru_cache(maxsize=256)
def validate_source_cached(source: str) -> tuple[str, ...]:
    """Memoized :func:`validate_source` for the plan-building path: the
    kernel generator emits byte-identical source for structurally identical
    stages, so a rebuilt (or evicted-and-rebuilt) plan revalidates free.
    Only successful validations are cached — errors always re-raise."""
    return tuple(validate_source(source))


_KERNEL_SIG = re.compile(r"__kernel\s+void\s+([A-Za-z_]\w*)\s*\(")
_IDENT = re.compile(r"[A-Za-z_]\w*")


def validate_source(source: str) -> list[str]:
    """Structurally validate generated OpenCL C.

    Returns the kernel names found; raises :class:`CLBuildError` on
    unbalanced delimiters, missing kernel entry points, or declared kernel
    parameters that the body never references.
    """
    for open_ch, close_ch in (("{", "}"), ("(", ")"), ("[", "]")):
        if source.count(open_ch) != source.count(close_ch):
            raise CLBuildError(
                f"unbalanced {open_ch}{close_ch} in generated source")
    names = _KERNEL_SIG.findall(source)
    if not names:
        raise CLBuildError("no __kernel entry point in generated source")

    for match in _KERNEL_SIG.finditer(source):
        sig_start = source.index("(", match.end() - 1)
        depth, i = 0, sig_start
        while i < len(source):
            if source[i] == "(":
                depth += 1
            elif source[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        params_text = source[sig_start + 1:i]
        body_start = source.index("{", i)
        depth, j = 0, body_start
        while j < len(source):
            if source[j] == "{":
                depth += 1
            elif source[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = source[body_start:j + 1]
        body_idents = set(_IDENT.findall(body))
        for param in params_text.split(","):
            idents = _IDENT.findall(param)
            if not idents:
                continue
            pname = idents[-1]
            if pname not in body_idents:
                raise CLBuildError(
                    f"kernel {match.group(1)!r} parameter {pname!r} "
                    "is never used in its body")
    return names
