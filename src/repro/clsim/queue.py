"""Simulated command queue with OpenCL-style profiling.

Mirrors the PyOpenCL calls the paper's framework issues:
``enqueue_write_buffer`` (host->device), ``enqueue_read_buffer``
(device->host), ``enqueue_kernel`` (ND-range launch) and program builds.
Every call appends a profiled :class:`~repro.clsim.events.Event`; the
Table II counters and Fig 5 timings fall out of this log.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import CLInvalidOperation
from ..metrics import get_registry
from .buffer import Buffer
from .context import Context
from .events import Event, EventKind, EventLog
from .kernel import Kernel, Program
from .perfmodel import KernelCost, build_seconds, kernel_seconds, \
    transfer_seconds

__all__ = ["CommandQueue"]

_OUT_DTYPES = {"double": np.float64, "float": np.float32,
               "int": np.int32, "long": np.int64, "size_t": np.int64}


def _run_interpreted(kernel: Kernel, device_args: list,
                     outs: "list[Buffer]"):
    """Execute a kernel from its generated OpenCL C source via the
    :mod:`repro.clc` interpreter (the ``backend="interpreted"`` path).

    Output arrays are synthesized from the kernel's trailing parameter
    types and the output buffers' byte sizes; the work-item count follows
    from the first output.
    """
    import time

    from ..clc import parse_clc
    from ..clc.interp import Interpreter
    from ..errors import CLBuildError

    cached = kernel.clc_cache
    if cached is None:
        unit = parse_clc(kernel.source)
        cached = (unit, Interpreter(unit))
        kernel.clc_cache = cached
    unit, interpreter = cached
    fn = unit.function(kernel.name)

    n_inputs = len(device_args)
    out_params = fn.params[n_inputs:]
    if len(out_params) != len(outs):
        raise CLBuildError(
            f"kernel {kernel.name!r} has {len(out_params)} output "
            f"parameters for {len(outs)} output buffers")

    out_arrays = []
    global_size = None
    for param, buf in zip(out_params, outs):
        dtype = np.dtype(_OUT_DTYPES[param.type.scalar_base])
        width = param.type.vector_width
        n = buf.nbytes // (dtype.itemsize * width)
        shape = (n,) if width == 1 else (n, width)
        out_arrays.append(np.zeros(shape, dtype=dtype))
        if global_size is None:
            global_size = n
    start = time.perf_counter()
    interpreter.run_kernel(kernel.name, [*device_args, *out_arrays],
                           global_size or 0)
    wall = time.perf_counter() - start
    result = out_arrays[0] if len(out_arrays) == 1 else tuple(out_arrays)
    return result, wall


class CommandQueue:
    """In-order command queue on one simulated device."""

    def __init__(self, context: Context, registry=None):
        self.context = context
        self.device = context.device
        self.log = EventLog()
        self._xfer_seconds: dict[int, float] = {}
        # Registry mirror of the event layer (Table II's measurement
        # surface): one count counter + one bytes counter per category,
        # bound once per queue so the per-event cost is two child
        # increments.  The log observer catches every record path.
        # ``registry`` overrides the process registry — capture/replay
        # environments pass NULL_REGISTRY so modeling runs stay silent.
        if registry is None:
            registry = get_registry()
        transfers = registry.counter(
            "repro_clsim_transfers_total",
            "Host<->device transfers enqueued (Table II Dev-W / Dev-R)",
            ("device", "direction"))
        transfer_bytes = registry.counter(
            "repro_clsim_transfer_bytes_total",
            "Bytes moved across the host<->device link",
            ("device", "direction"))
        name = self.device.name
        self._event_children = {
            EventKind.DEV_WRITE: (
                transfers.labels(device=name, direction="write"),
                transfer_bytes.labels(device=name, direction="write")),
            EventKind.DEV_READ: (
                transfers.labels(device=name, direction="read"),
                transfer_bytes.labels(device=name, direction="read")),
            EventKind.KERNEL: (
                registry.counter(
                    "repro_clsim_kernel_launches_total",
                    "Kernel executions enqueued (Table II K-Exe)",
                    ("device",)).labels(device=name),
                registry.counter(
                    "repro_clsim_kernel_global_bytes_total",
                    "Global-memory bytes touched by enqueued kernels",
                    ("device",)).labels(device=name)),
            EventKind.BUILD: (
                registry.counter(
                    "repro_clsim_builds_total",
                    "Program builds (one-time compilation events)",
                    ("device",)).labels(device=name),
                None),
        }
        self.log.observer = self._observe_event

    def _observe_event(self, event: Event) -> None:
        count_child, bytes_child = self._event_children[event.kind]
        count_child.inc()
        if bytes_child is not None:
            bytes_child.inc(event.nbytes)

    def xfer_seconds(self, nbytes: int) -> float:
        """Modeled host<->device transfer time, memoized per size — warm
        re-executions repeat the same buffer sizes every run."""
        seconds = self._xfer_seconds.get(nbytes)
        if seconds is None:
            seconds = transfer_seconds(nbytes, self.device)
            self._xfer_seconds[nbytes] = seconds
        return seconds

    # -- transfers -----------------------------------------------------------

    def enqueue_write_buffer(self, buffer: Buffer,
                             host_array: np.ndarray) -> None:
        """Copy a host array into device memory (Dev-W event)."""
        buffer.set_data(host_array)
        self.log.record(Event(
            EventKind.DEV_WRITE, buffer.label, host_array.nbytes,
            sim_seconds=self.xfer_seconds(host_array.nbytes)))

    def enqueue_read_buffer(self, buffer: Buffer) -> Optional[np.ndarray]:
        """Copy device memory back to the host (Dev-R event).

        Returns ``None`` for dry buffers — callers running a plan must not
        depend on values.
        """
        result = None if buffer.dry else buffer.get_data().copy()
        self.log.record(Event(
            EventKind.DEV_READ, buffer.label, buffer.nbytes,
            sim_seconds=self.xfer_seconds(buffer.nbytes)))
        return result

    # -- kernels ---------------------------------------------------------------

    def enqueue_kernel(self, kernel: Kernel, args: Sequence[object],
                       out: "Buffer | Sequence[Buffer]",
                       cost: KernelCost) -> None:
        """Launch a kernel: run its NumPy executor over the buffer args and
        store the result(s) in ``out`` (K-Exe event).

        ``args`` may mix :class:`Buffer` (passed as its device array) and
        plain scalars (OpenCL by-value arguments).  ``out`` is one buffer,
        or a sequence when the kernel writes several global arrays (a fused
        kernel materializing multiple intermediates); the executor must
        then return a matching tuple.  In a dry-run context the executor is
        skipped; cost accounting still happens.
        """
        outs: list[Buffer] = list(out) if isinstance(out, (list, tuple)) \
            else [out]
        wall = 0.0
        if not self.context.dry_run:
            device_args = []
            for a in args:
                if isinstance(a, Buffer):
                    device_args.append(a.get_data())
                else:
                    device_args.append(a)
            if self.context.backend == "interpreted" \
                    and kernel.source.strip():
                result, wall = _run_interpreted(kernel, device_args, outs)
            else:
                result, wall = kernel.run(device_args)
            if result is not None:
                results = list(result) if isinstance(result, tuple) \
                    else [result]
                if len(results) != len(outs):
                    raise CLInvalidOperation(
                        f"kernel {kernel.name!r} produced {len(results)} "
                        f"outputs for {len(outs)} output buffers")
                for array, buf in zip(results, outs):
                    if array.nbytes != buf.nbytes:
                        raise CLInvalidOperation(
                            f"kernel {kernel.name!r} produced "
                            f"{array.nbytes} B but output buffer "
                            f"{buf.label!r} is {buf.nbytes} B")
                    buf.data = np.ascontiguousarray(array)
        self.log.record(Event(
            EventKind.KERNEL, kernel.name, cost.global_bytes,
            sim_seconds=kernel_seconds(cost, self.device),
            wall_seconds=wall))

    def build_program(self, program: Program) -> Program:
        """Build a program (BUILD event with compile-time cost)."""
        program.built = True
        self.log.record(Event(
            EventKind.BUILD, f"build[{len(program.kernels)}]", 0,
            sim_seconds=build_seconds(
                len(program.kernels), program.source_lines, self.device)))
        return program

    def finish(self) -> None:
        """In-order simulated queue: everything already completed."""
