"""Simulated OpenCL runtime (the PyOpenCL + hardware substitute).

Models the two Edge-cluster targets — the Intel X5660 CPU and the NVIDIA
Tesla M2050 GPU — as :class:`~repro.clsim.device.DeviceSpec` objects, and
provides contexts, tracked global-memory buffers, in-order command queues
with OpenCL-style profiling events, program/kernel objects carrying real
generated OpenCL C source, and the paper's "OpenCL environment interface"
(:class:`~repro.clsim.environment.CLEnvironment`).

Execution is backed by vectorized NumPy; durations come from an analytic
roofline performance model so full-paper-scale experiments run as dry
plans.  See DESIGN.md §2 for why this substitution preserves the paper's
observable behaviour.
"""

from .buffer import AllocationStats, Allocator, Buffer, BufferPool
from .compiler import KernelSourceBuilder, validate_source
from .context import Context
from .device import (DeviceSpec, DeviceType, GIB, INTEL_X5660_CPU, KIB, MIB,
                     NVIDIA_M2050_GPU)
from .environment import CLEnvironment, TimingSummary
from .events import Event, EventCounts, EventKind, EventLog
from .kernel import Kernel, Program
from .perfmodel import KernelCost, build_seconds, kernel_seconds, \
    transfer_seconds
from .platform import Platform, find_device, get_platforms
from .queue import CommandQueue

__all__ = [
    "AllocationStats", "Allocator", "Buffer", "BufferPool",
    "KernelSourceBuilder", "validate_source",
    "Context", "DeviceSpec", "DeviceType", "GIB", "KIB", "MIB",
    "INTEL_X5660_CPU", "NVIDIA_M2050_GPU", "CLEnvironment", "TimingSummary",
    "Event", "EventCounts", "EventKind", "EventLog", "Kernel", "Program",
    "KernelCost", "build_seconds", "kernel_seconds", "transfer_seconds",
    "Platform", "find_device", "get_platforms", "CommandQueue",
]
