"""Profiling events for the simulated OpenCL runtime.

The paper's framework records and categorizes device events through "an
OpenCL environment interface built on top of PyOpenCL ... using the standard
OpenCL device profiling API".  This module is that interface's event layer:
every host-to-device write, device-to-host read, kernel execution, and
program build appends an :class:`Event` to the queue's :class:`EventLog`.

Each event carries two durations: ``sim_seconds`` from the analytic device
performance model (used to reproduce the paper's figures at full scale) and
``wall_seconds``, the real time the NumPy executor took (zero in dry runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

__all__ = ["EventKind", "Event", "EventLog", "EventCounts"]


class EventKind(enum.Enum):
    """Categories matching the paper's Table II columns."""

    DEV_WRITE = "dev-write"    # host -> device transfer (Dev-W)
    DEV_READ = "dev-read"      # device -> host transfer (Dev-R)
    KERNEL = "kernel"          # kernel execution (K-Exe)
    BUILD = "build"            # program compilation


@dataclass(frozen=True)
class Event:
    """One profiled device event."""

    kind: EventKind
    name: str
    nbytes: int
    sim_seconds: float
    wall_seconds: float = 0.0
    # Modeled start offset on the in-order queue timeline, stamped by
    # :meth:`EventLog.record` (None until recorded).
    ts_seconds: Optional[float] = None


@dataclass(frozen=True)
class EventCounts:
    """The Table II triple for one execution."""

    dev_writes: int
    dev_reads: int
    kernel_execs: int

    def as_row(self) -> tuple[int, int, int]:
        return (self.dev_writes, self.dev_reads, self.kernel_execs)


@dataclass
class EventLog:
    """Append-only log with per-category aggregation.

    Recording stamps each event's ``ts_seconds`` with the modeled queue
    cursor — the in-order device executes events back to back, so an
    event starts where its predecessor ended.  Timestamps are therefore
    monotonically non-decreasing within one log, which is what lets the
    trace layer lay events onto device lanes without re-deriving offsets.
    """

    events: list[Event] = field(default_factory=list)
    cursor: float = 0.0
    # Per-record hook: the command queue installs a registry observer
    # here so every event — including direct records like dry-run
    # ``upload_shape`` — lands in the process-wide transfer/kernel
    # counters (DESIGN.md §9) no matter which call site produced it.
    observer: Optional[Callable[[Event], None]] = None

    def record(self, event: Event) -> None:
        if event.ts_seconds is None:
            event = replace(event, ts_seconds=self.cursor)
        self.cursor = event.ts_seconds + event.sim_seconds
        self.events.append(event)
        if self.observer is not None:
            self.observer(event)

    def clear(self) -> None:
        self.events.clear()
        self.cursor = 0.0

    # -- aggregation -------------------------------------------------------

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def counts(self) -> EventCounts:
        return EventCounts(
            dev_writes=self.count(EventKind.DEV_WRITE),
            dev_reads=self.count(EventKind.DEV_READ),
            kernel_execs=self.count(EventKind.KERNEL),
        )

    def sim_time(self, kinds: Iterable[EventKind] | None = None) -> float:
        """Total simulated seconds, optionally restricted to categories."""
        wanted = set(kinds) if kinds is not None else None
        return sum(e.sim_seconds for e in self.events
                   if wanted is None or e.kind in wanted)

    def wall_time(self, kinds: Iterable[EventKind] | None = None) -> float:
        wanted = set(kinds) if kinds is not None else None
        return sum(e.wall_seconds for e in self.events
                   if wanted is None or e.kind in wanted)

    def bytes_moved(self, kind: EventKind) -> int:
        return sum(e.nbytes for e in self.events if e.kind is kind)

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per category, the paper's timing breakdown."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kind.value] = out.get(e.kind.value, 0.0) + e.sim_seconds
        return out

    def to_chrome_trace(self) -> list[dict]:
        """Export the modeled timeline as Chrome trace-event JSON objects
        (load into chrome://tracing or Perfetto to see the in-order queue:
        transfers and kernels back to back).

        Events are laid out sequentially on one device track, matching the
        in-order simulated queue.  Timestamps/durations are microseconds.
        """
        trace = []
        for e in self.events:
            trace.append({
                "name": e.name,
                "cat": e.kind.value,
                "ph": "X",
                "ts": (e.ts_seconds or 0.0) * 1e6,
                "dur": e.sim_seconds * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {"bytes": e.nbytes,
                         "wall_seconds": e.wall_seconds},
            })
        return trace
