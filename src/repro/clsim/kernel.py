"""Simulated OpenCL kernel and program objects.

A :class:`Kernel` pairs the generated OpenCL C source (kept for inspection
and structural validation, exactly what the paper's dynamic kernel generator
emits) with a vectorized NumPy *executor* that performs the same computation
on the simulated device's buffers.  A :class:`Program` groups kernels built
from one source string, mirroring ``cl.Program(ctx, src).build()``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import CLBuildError
from .perfmodel import KernelCost

__all__ = ["Kernel", "Program"]

# Executor signature: (*device_args) -> result ndarray.  Device args are the
# NumPy arrays backing buffer arguments, and plain Python scalars for
# by-value arguments (staged passes constants this way).
Executor = Callable[..., np.ndarray]


@dataclass
class Kernel:
    """One simulated ``__kernel`` entry point."""

    name: str
    source: str
    executor: Optional[Executor] = None
    arg_names: tuple[str, ...] = ()
    # Parsed-source cache for the interpreted backend: (unit, Interpreter).
    # Living on the kernel, it survives across plan-cached warm runs.
    clc_cache: Optional[tuple] = field(default=None, repr=False,
                                       compare=False)

    def run(self, args: Sequence[object]) -> tuple[Optional[np.ndarray], float]:
        """Execute the NumPy executor; returns (result, wall_seconds).

        A kernel without an executor (dry-run planning constructs) returns
        ``(None, 0.0)``.
        """
        if self.executor is None:
            return None, 0.0
        start = time.perf_counter()
        result = self.executor(*args)
        return result, time.perf_counter() - start


@dataclass
class Program:
    """A set of kernels compiled from one OpenCL C source string."""

    source: str
    kernels: dict[str, Kernel] = field(default_factory=dict)
    built: bool = False

    def add_kernel(self, kernel: Kernel) -> None:
        if kernel.name in self.kernels:
            raise CLBuildError(f"duplicate kernel name {kernel.name!r}")
        self.kernels[kernel.name] = kernel

    def kernel(self, name: str) -> Kernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise CLBuildError(f"no kernel named {name!r} in program") from None

    @property
    def source_lines(self) -> int:
        return self.source.count("\n") + 1
