"""The "OpenCL environment interface" from the paper.

Section IV-D: *"Our framework provides an OpenCL environment interface built
on top of PyOpenCL that records and categorizes timing events ... In
addition to recording timing events, the interface manages requests for
device buffers. The amount of memory reserved for each device buffer is
tracked."*

:class:`CLEnvironment` is that object: device selection, context + queue
creation, buffer management, and the aggregated timing / event-count /
memory views every study in the evaluation reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .buffer import AllocationStats, Buffer, BufferPool
from .context import Context
from .device import DeviceSpec, DeviceType
from .events import Event, EventCounts, EventKind
from .platform import find_device
from .queue import CommandQueue
from ..trace import NULL_TRACER

__all__ = ["CLEnvironment", "TimingSummary"]


@dataclass(frozen=True)
class TimingSummary:
    """Per-category simulated timing breakdown for one execution.

    ``total`` corresponds to the y-axis of Fig 5: host-to-device transfers +
    kernel executions + device-to-host transfers (build time is reported
    separately, as the paper's timings exclude one-time compilation).
    """

    host_to_device: float
    kernel_exec: float
    device_to_host: float
    build: float
    wall: float
    # Timeline end: latest modeled completion across the event log.  On
    # the serial in-order queue this equals ``total`` + build; under the
    # overlapped streaming timeline (transfers of chunk k+1 behind the
    # compute of chunk k) it is strictly smaller — the double-buffering
    # win is exactly ``total + build - makespan``.
    makespan: float = 0.0

    @property
    def total(self) -> float:
        return self.host_to_device + self.kernel_exec + self.device_to_host


class CLEnvironment:
    """One device's context, queue, and instrumentation."""

    def __init__(self, device: str | DeviceType | DeviceSpec = "gpu", *,
                 dry_run: bool = False, backend: str = "vectorized",
                 pooling: bool = False, tracer=None, registry=None):
        if isinstance(device, DeviceSpec):
            self.device = device
        else:
            self.device = find_device(device)
        self.dry_run = dry_run
        # The owning engine's tracer (strategies read it for launch-phase
        # spans); NULL_TRACER keeps the hot path allocation-free.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.context = Context(self.device, dry_run=dry_run,
                               backend=backend, pooling=pooling,
                               registry=registry)
        self.queue = CommandQueue(self.context, registry=registry)

    def capture(self) -> "CLEnvironment":
        """A capture twin of this environment: the *same* context
        (allocator, buffer pool, dry-run mode — so buffers and pooled
        reuse behave exactly as a run on this environment would) but a
        private, registry-silent command queue.

        Batched and pipelined execution run each member/chunk against a
        capture twin to obtain its solo event stream, then rewrite the
        streams (:mod:`repro.clsim.pipeline`) into this environment's
        log — recording modeled events exactly once, on the merged
        timeline, so process-wide counters see the batched semantics.
        """
        from ..metrics import NULL_REGISTRY

        twin = object.__new__(CLEnvironment)
        twin.device = self.device
        twin.dry_run = self.dry_run
        twin.tracer = NULL_TRACER
        twin.context = self.context
        twin.queue = CommandQueue(self.context, registry=NULL_REGISTRY)
        return twin

    # -- buffers -------------------------------------------------------------

    def create_buffer(self, nbytes: int, label: str = "") -> Buffer:
        return self.context.create_buffer(nbytes, label)

    def upload(self, array: np.ndarray, label: str = "") -> Buffer:
        """Allocate a buffer and enqueue the host->device write."""
        buf = self.context.create_buffer(array.nbytes, label)
        self.queue.enqueue_write_buffer(buf, array)
        return buf

    def upload_shape(self, nbytes: int, label: str = "") -> Buffer:
        """Dry-run twin of :meth:`upload`: allocate and count the write
        event without host data (used at full paper scale)."""
        buf = self.context.create_buffer(nbytes, label)
        self.queue.log.record(Event(
            EventKind.DEV_WRITE, label, nbytes,
            sim_seconds=self.queue.xfer_seconds(nbytes)))
        return buf

    # -- instrumentation ----------------------------------------------------

    def event_counts(self) -> EventCounts:
        """The Table II (Dev-W, Dev-R, K-Exe) triple."""
        return self.queue.log.counts()

    def timing(self) -> TimingSummary:
        log = self.queue.log
        return TimingSummary(
            host_to_device=log.sim_time([EventKind.DEV_WRITE]),
            kernel_exec=log.sim_time([EventKind.KERNEL]),
            device_to_host=log.sim_time([EventKind.DEV_READ]),
            build=log.sim_time([EventKind.BUILD]),
            wall=log.wall_time(),
            makespan=max(((e.ts_seconds or 0.0) + e.sim_seconds
                          for e in log.events), default=0.0),
        )

    @property
    def mem_high_water(self) -> int:
        """Peak global device memory reserved for buffers (Fig 6 y-axis)."""
        return self.context.mem_high_water

    @property
    def mem_in_use(self) -> int:
        return self.context.mem_in_use

    @property
    def pool(self) -> BufferPool | None:
        """The buffer pool, when this environment was built with
        ``pooling=True`` (the warm-execution path)."""
        return self.context.pool

    def alloc_stats(self) -> AllocationStats:
        """Allocator + pool counters: total/reused allocations, peak,
        pooled bytes.  Observable pool efficacy without a debugger."""
        return self.context.allocator.stats(self.context.pool)

    def reset_instrumentation(self) -> None:
        """Clear the event log and peak tracking between test cases."""
        self.queue.log.clear()
        self.context.allocator.reset_peak()
