"""repro — reproduction of "Efficient Dynamic Derived Field Generation on
Many-Core Architectures Using Python" (Harrison et al., SC 2012).

The top-level package re-exports the small public API most users need:

>>> import numpy as np, repro
>>> u = np.random.rand(16, 16, 16).astype(np.float32)
>>> out = repro.derive("v = u * u", fields={"u": u})["v"]

See :mod:`repro.host.interface` for the in-situ entry point,
:mod:`repro.strategies` for the roundtrip/staged/fusion execution
strategies, and :mod:`repro.clsim` for the simulated OpenCL runtime.
"""

from .errors import (
    CLBuildError,
    CLError,
    CLOutOfMemoryError,
    ExpressionError,
    LexError,
    LoweringError,
    NetworkError,
    ParseError,
    PrimitiveError,
    ReproError,
    StrategyError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "ExpressionError", "LexError", "ParseError",
    "LoweringError", "NetworkError", "PrimitiveError", "CLError",
    "CLOutOfMemoryError", "CLBuildError", "StrategyError",
    "derive", "DerivedFieldEngine",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # the subpackages load each other.
    if name == "derive":
        from .host.interface import derive
        return derive
    if name == "DerivedFieldEngine":
        from .host.engine import DerivedFieldEngine
        return DerivedFieldEngine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
