"""Lower a dataflow network into one Python sweep function's source.

The interpreter strategies walk an executor tree on every launch: one
Python-level dispatch, one full-size temporary, and one round of argument
marshalling per primitive.  The generator instead emits the whole network
as straight-line Python — inputs as function parameters, intermediates as
locals, one vectorized NumPy statement per node — which ``compile()``s
once and then runs as a single function call on the warm path.

Lowering rules (each chosen to keep the result bitwise-identical to the
interpreters, which all apply the same ``numpy_fn`` sequence):

* arithmetic primitives become native operators (``+ - * /`` and unary
  ``-`` are the same ufuncs ``np.add``/``np.subtract``/... invoke);
* constants are inlined as parenthesized literals, exactly like the
  fusion executor's source-level constant insertion;
* ``grad3d`` over source meshes lowers to row form
  (:func:`~repro.codegen.runtime.grad3d_rows`), and gradients of several
  source fields over one mesh fuse into a single
  :func:`~repro.codegen.runtime.grad3d_stack` call;
* decompositions of row-form gradients alias locals (components 0-2) or
  a zeros row (the padding lane); everything else slices ``[:, c]`` the
  way the fusion executor does;
* any other primitive calls its registered ``numpy_fn`` through a bound
  ``_p_<name>`` name, with row-form values materialized back to the
  padded AoS layout first.

On top of the straight-line lowering, two optimizations shrink the
sweep's memory traffic — the dominant cost once per-op dispatch is gone,
because dozens of full-size temporaries overflow the cache:

* **commutative CSE** — IEEE ``add`` and ``multiply`` are commutative
  bitwise, so ``a + b`` and ``b + a`` (which interpreter networks emit
  freely for symmetric tensors) collapse to one statement via a value
  table keyed on canonically ordered operands;
* **buffer donation** — a liveness pass finds, per arithmetic statement,
  an operand temporary that dies at that statement and whose buffer the
  result can be computed into (``np.add(a, b, out=a)``).  The working
  set then stays a handful of cache-hot arrays instead of one cold
  allocation per node.  Donation is cast-hazardous when inputs mix
  dtypes, so the fast body is guarded by a runtime
  :func:`~repro.codegen.runtime.uniform_float` check on every
  dtype-contributing parameter and the unguarded pure-SSA body is kept
  as the ``else`` branch — same statements, no ``out=``.

The emitted source depends only on the network (not on array sizes or
dtypes), so it can be persisted to the on-disk plan cache and re-``exec``'d
by a later process against that process's primitive registry.
"""

from __future__ import annotations

import itertools
import keyword
from dataclasses import dataclass, field

from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE, NodeSpec
from ..errors import CodegenError
from ..primitives.arithmetic import ADD, DIV, MULT, NEG, SUB
from ..primitives.base import ResultKind
from ..primitives.gradient import grad3d_numpy

__all__ = ["SweepSource", "generate_sweep"]

# Names the generated function may not use for parameters: the module
# binding plus everything the namespace builder injects (all of which
# start with an underscore, which the sanitizer rejects wholesale).
_RESERVED = {"np"}

# Arithmetic primitives whose numpy_fn is exactly the ufunc the native
# operator invokes.  Matched by identity: a custom registry primitive
# that merely shares the name falls back to the generic ``_p_`` call.
_BINARY_OPS = ((ADD, "+"), (SUB, "-"), (MULT, "*"), (DIV, "/"))

# Operator -> the ufunc the operator invokes, for ``out=`` rendering.
_UFUNC = {"+": "np.add", "-": "np.subtract", "*": "np.multiply",
          "/": "np.divide", "neg": "np.negative"}

# Operators that are bitwise-commutative in IEEE arithmetic (addition
# and multiplication; subtraction/division are not).
_COMMUTATIVE = {"+", "*"}


@dataclass(frozen=True)
class SweepSource:
    """The generated sweep: source text plus its binding requirements."""

    source: str
    params: tuple[str, ...]           # function parameters, source order
    primitive_names: tuple[str, ...]  # primitives bound as _p_<name>


@dataclass
class _Stmt:
    """One emitted statement plus the metadata the optimizer needs."""

    text: str                          # pure-SSA rendering
    uses: tuple[str, ...] = ()         # local/param names read
    defs: tuple[str, ...] = ()         # names defined
    owned: tuple[str, ...] = ()        # defs owning a writable full array
    clean: bool = False                # dtype provable under the guard
    arith: tuple | None = None         # (dest, op, argexprs, argnames)
    donate: str | None = field(default=None, compare=False)
    conditional_on: str | None = field(default=None, compare=False)
    partner_is_array: bool = field(default=True, compare=False)


def _sanitize_params(source_ids: tuple[str, ...]) -> tuple[str, ...]:
    used: set[str] = set()
    params = []
    for i, source_id in enumerate(source_ids):
        name = source_id
        if (not name.isidentifier() or keyword.iskeyword(name)
                or name.startswith("_") or name in _RESERVED):
            name = f"a{i}"
        while name in used:
            name = f"{name}_{i}"
        used.add(name)
        params.append(name)
    return tuple(params)


def _plan_donations(stmts: list[_Stmt], result_names: set[str],
                    view_sources: set[str],
                    arrayish: set[str]) -> bool:
    """Mark, per arithmetic statement, a dead clean operand whose buffer
    the result may be computed into.  Returns True if any donation was
    planned."""
    owned: set[str] = set()
    clean: set[str] = set()
    for stmt in stmts:
        owned.update(stmt.owned)
        if stmt.clean:
            clean.update(stmt.defs)
    # An array with slice views taken of it must never be written
    # through donation — a view may outlive the name's own last use.
    owned -= view_sources
    last_use: dict[str, int] = {}
    for i, stmt in enumerate(stmts):
        for name in stmt.uses:
            last_use[name] = i
    for name in result_names:
        last_use[name] = len(stmts)

    any_donated = False
    for i, stmt in enumerate(stmts):
        if stmt.arith is None or not stmt.clean:
            continue
        dest, op, args, argnames = stmt.arith
        # A donor must be a value that is certainly an ndarray under the
        # fast-body guard — const-only subtrees evaluate to Python
        # floats, which a ufunc cannot write into.
        candidates = [n for n in argnames
                      if n in owned and n in clean and n in arrayish
                      and last_use[n] == i]
        if not candidates:
            continue
        # Prefer a donor whose shape is guaranteed to match the result:
        # a repeated operand or a scalar-constant partner.
        others = {n for n in argnames}
        sure = [n for n in candidates
                if others == {n} or len(args) == 1]
        donor = (sure or candidates)[0]
        stmt.donate = donor
        if not sure:
            partner = next(n for n in argnames if n != donor)
            stmt.conditional_on = partner
            stmt.partner_is_array = partner in arrayish
        any_donated = True
    return any_donated


def _render_arith(stmt: _Stmt, inplace: bool) -> str:
    dest, op, args, _ = stmt.arith
    if not inplace or stmt.donate is None:
        if op == "neg":
            return f"{dest} = -{args[0]}"
        return f"{dest} = {args[0]} {op} {args[1]}"
    donor = stmt.donate
    if stmt.conditional_on is not None:
        # np.shape() for partners that may be Python scalars at runtime
        # (e.g. values returned by a registry primitive).
        partner = (f"{stmt.conditional_on}.shape" if stmt.partner_is_array
                   else f"np.shape({stmt.conditional_on})")
        out = f"{donor} if {donor}.shape == {partner} else None"
    else:
        out = donor
    return f"{dest} = {_UFUNC[op]}({', '.join(args)}, out={out})"


def generate_sweep(network: Network) -> SweepSource:
    """Emit the single-function Python source for one network."""
    spec = network.spec
    registry = network.registry
    schedule = network.schedule()
    output_id = network.output_ids()[0]
    sources = tuple(network.live_sources())
    source_ids = set(sources)
    params = _sanitize_params(sources)
    param_set = set(params)

    # Node id -> expression referencing its value (a parameter name, a
    # parenthesized constant literal, or a local variable).
    val: dict[str, str] = dict(zip(sources, params))
    # Row-form gradients: node id -> (dx, dy, dz) local names.
    rows: dict[str, tuple[str, str, str]] = {}
    stmts: list[_Stmt] = []
    primitive_names: list[str] = []
    counter = itertools.count()
    # Names whose dtype is the shared input dtype whenever the guarded
    # parameters are dtype-uniform floats (params and everything derived
    # from them through operators, gradients, and aliasing).
    clean: set[str] = set(params)
    # Parameters whose dtype reaches an intermediate; the fast body's
    # uniform_float guard checks exactly these.
    checked: list[str] = []
    # Value-numbering table for commutative CSE over native operators.
    cse: dict[tuple, str] = {}
    # Names that have slice views taken of them (never donation targets).
    view_sources: set[str] = set()
    # Names certain to hold an ndarray under the fast-body guard (every
    # parameter that reaches arithmetic is in ``checked``, which the
    # guard verifies to be proper arrays; const-only subtrees evaluate
    # to Python floats and stay out).
    arrayish: set[str] = set(params)

    consumers: dict[str, list[NodeSpec]] = {}
    for node in schedule:
        for input_id in node.inputs:
            consumers.setdefault(input_id, []).append(node)

    def fresh(prefix: str = "t") -> str:
        return f"{prefix}{next(counter)}"

    def note_checked(name: str) -> None:
        if name in param_set and name not in checked:
            checked.append(name)

    def names_of(exprs) -> tuple[str, ...]:
        return tuple(e for e in exprs if e.isidentifier())

    def needs_aos(node_id: str) -> bool:
        """A row-form gradient must materialize the padded AoS array when
        it is the network output or feeds any non-decompose consumer."""
        if node_id == output_id:
            return True
        return any(c.filter != "decompose"
                   for c in consumers.get(node_id, ()))

    def emit_aos(node_id: str) -> None:
        r = rows[node_id]
        name = fresh()
        is_clean = all(n in clean for n in r)
        if is_clean:
            clean.add(name)
        arrayish.add(name)
        stmts.append(_Stmt(text=f"{name} = _aos4({r[0]}, {r[1]}, {r[2]})",
                           uses=r, defs=(name,), owned=(name,),
                           clean=is_clean))
        val[node_id] = name

    def emit_rows(node_id: str, row_names: tuple[str, ...],
                  field_exprs: tuple[str, ...], text: str) -> None:
        field_names = names_of(field_exprs)
        is_clean = all(n in clean for n in field_names)
        if is_clean:
            clean.update(row_names)
        arrayish.update(row_names)
        for n in field_names:
            note_checked(n)
        stmts.append(_Stmt(text=text, uses=field_names, defs=row_names,
                           owned=row_names, clean=is_clean))

    def bind_primitive(name: str) -> str:
        if name not in primitive_names:
            primitive_names.append(name)
        return f"_p_{name}"

    def rows_eligible(node: NodeSpec) -> bool:
        """Row lowering is only valid for the stock grad3d semantics and
        needs the mesh arrays available as parameters from the start."""
        return (node.filter == "grad3d"
                and registry.get(node.filter).numpy_fn is grad3d_numpy
                and all(i in source_ids for i in node.inputs[1:]))

    # Gradients of several *source* fields over one shared source mesh
    # fuse into a single stacked call, emitted at the first member's
    # schedule position (all of its operands are parameters, so nothing
    # it needs is defined later).
    mesh_groups: dict[tuple[str, ...], list[NodeSpec]] = {}
    for node in schedule:
        if rows_eligible(node) and node.inputs[0] in source_ids:
            mesh_groups.setdefault(node.inputs[1:], []).append(node)
    stacked_at: dict[str, list[NodeSpec]] = {}
    stacked_member: set[str] = set()
    for members in mesh_groups.values():
        if len(members) >= 2:
            stacked_at[members[0].id] = members
            stacked_member.update(m.id for m in members)

    for node in schedule:
        if node.filter == SOURCE:
            continue
        if node.filter == CONST:
            val[node.id] = f"({float(node.param('value'))!r})"
            continue

        if node.id in stacked_at:
            members = stacked_at[node.id]
            row_names: list[str] = []
            for member in members:
                r = (fresh("g"), fresh("g"), fresh("g"))
                rows[member.id] = r
                row_names.extend(r)
            field_exprs = tuple(val[m.inputs[0]] for m in members)
            mesh = ", ".join(val[i] for i in members[0].inputs[1:])
            emit_rows(node.id, tuple(row_names), field_exprs,
                      f"{', '.join(row_names)} = "
                      f"_grad3d_stack(({', '.join(field_exprs)},)"
                      f", {mesh})")
            for member in members:
                if needs_aos(member.id):
                    emit_aos(member.id)
            continue
        if node.id in stacked_member:
            continue  # emitted with its stack group above

        if rows_eligible(node):
            r = (fresh("g"), fresh("g"), fresh("g"))
            rows[node.id] = r
            args = ", ".join(val[i] for i in node.inputs)
            emit_rows(node.id, r, (val[node.inputs[0]],),
                      f"{r[0]}, {r[1]}, {r[2]} = _grad3d_rows({args})")
            if needs_aos(node.id):
                emit_aos(node.id)
            continue

        if node.filter == "decompose":
            source = node.inputs[0]
            component = int(node.param("component"))
            if source in rows:
                if component < 3:
                    val[node.id] = rows[source][component]
                else:
                    name = fresh()
                    row = rows[source][0]
                    if row in clean:
                        clean.add(name)
                    arrayish.add(name)
                    stmts.append(_Stmt(
                        text=f"{name} = np.zeros_like({row})",
                        uses=(row,), defs=(name,), owned=(name,),
                        clean=row in clean))
                    val[node.id] = name
            else:
                name = fresh()
                src = val[source]
                src_names = names_of((src,))
                is_clean = all(n in clean for n in src_names)
                if is_clean:
                    clean.add(name)
                arrayish.add(name)
                for n in src_names:
                    note_checked(n)
                # A slice is a view into its source: never a donation
                # target (writing through it would corrupt siblings),
                # and its source must stay read-only too.
                view_sources.update(src_names)
                stmts.append(_Stmt(
                    text=f"{name} = ({src})[:, {component}]",
                    uses=src_names, defs=(name,), clean=is_clean))
                val[node.id] = name
            continue

        primitive = registry.get(node.filter)
        args = [val[i] for i in node.inputs]
        binary_op = next((op for p, op in _BINARY_OPS if primitive is p),
                         None)
        if binary_op is not None or primitive is NEG:
            op = binary_op if binary_op is not None else "neg"
            key = ((op,) + tuple(sorted(args)) if op in _COMMUTATIVE
                   else (op,) + tuple(args))
            hit = cse.get(key)
            if hit is not None:
                val[node.id] = hit
                continue
            name = fresh()
            argnames = names_of(args)
            is_clean = all(n in clean for n in argnames)
            if is_clean:
                clean.add(name)
            if any(n in arrayish for n in argnames):
                arrayish.add(name)
            for n in argnames:
                note_checked(n)
            stmt = _Stmt(text="", uses=argnames, defs=(name,),
                         owned=(name,), clean=is_clean,
                         arith=(name, op, tuple(args), argnames))
            stmt.text = _render_arith(stmt, inplace=False)
            stmts.append(stmt)
            cse[key] = name
            val[node.id] = name
            continue

        if node.params:
            raise CodegenError(
                f"cannot compile primitive {node.filter!r} with "
                "node parameters")
        callee = bind_primitive(node.filter)
        name = fresh()
        # A registry numpy_fn may return a view or an unrelated dtype:
        # its result is neither clean nor a donation target.
        stmts.append(_Stmt(
            text=f"{name} = {callee}({', '.join(args)})",
            uses=names_of(tuple(args)), defs=(name,)))
        val[node.id] = name

    # Output postprocessing mirrors the fusion executor exactly: copy a
    # bare source (never alias caller arrays), reshape uniforms to 1-D,
    # force vectors contiguous, broadcast scalar results to full fields.
    if spec.node(output_id).filter == SOURCE:
        result = f"{val[output_id]}.copy()"
    elif network.uniform(output_id):
        result = f"_uniform({val[output_id]})"
    elif network.kind_of(output_id) is ResultKind.VECTOR:
        result = f"_vec({val[output_id]})"
    else:
        result = f"_field({val[output_id]})"
    result_names = set(names_of((val[output_id],)))

    donated = _plan_donations(stmts, result_names, view_sources, arrayish)
    src_lines = [f"def _sweep({', '.join(params)}):"]
    if donated and checked:
        # Fast body: in-place donation, valid whenever every dtype-
        # contributing input shares one floating dtype; the pure-SSA
        # body below is the fallback for everything else.
        guard = ", ".join(checked) + ("," if len(checked) == 1 else "")
        src_lines.append(f"    if _ufloat(({guard})):")
        for stmt in stmts:
            line = (_render_arith(stmt, inplace=True)
                    if stmt.arith is not None else stmt.text)
            src_lines.append(f"        {line}")
        src_lines.append(f"        return {result}")
    src_lines.extend(f"    {stmt.text}" for stmt in stmts)
    src_lines.append(f"    return {result}")
    return SweepSource(source="\n".join(src_lines) + "\n",
                       params=params,
                       primitive_names=tuple(primitive_names))
