"""Compiled executor backend (DESIGN.md §10).

Lowers a fused :class:`~repro.strategies.plancache.ExecutablePlan` into
one ``compile()``-d Python sweep function and layers a persistent on-disk
plan cache underneath, so a warm launch is a single function call and a
restarted engine process warms instantly from disk.
"""

from .compiled import CompiledPlan, capture_launch, codegen_token, \
    compile_plan
from .diskcache import DiskLookup, PlanDiskCache, default_plan_cache_dir
from .generator import SweepSource, generate_sweep
from .runtime import aos4, grad3d_rows, grad3d_stack

__all__ = [
    "CompiledPlan", "DiskLookup", "PlanDiskCache", "SweepSource",
    "aos4", "capture_launch", "codegen_token", "compile_plan",
    "default_plan_cache_dir", "generate_sweep", "grad3d_rows",
    "grad3d_stack",
]
