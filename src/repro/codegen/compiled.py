"""The compiled executable plan and its build pipeline.

A :class:`CompiledPlan` wraps an interpreter-built base plan with the
``exec``-compiled sweep function from :mod:`repro.codegen.generator`.  A
warm launch is then one Python call — no executor-tree walk, no simulated
buffer traffic — while the modeled observables stay exact: at compile
time the base plan is dry-replayed once on an unmetered environment to
capture its full event trace (kind, name, bytes, modeled seconds) and its
allocator high-water mark, and every compiled launch replays that trace
into the live environment's log.  Event counts, modeled timings, transfer
bytes, and the Fig 6 peak therefore match the interpreter bit-for-bit;
only the host wall time changes (that is the point).

``entry()``/``from_entry()`` round-trip a plan through JSON for the
on-disk cache: the sweep *source* is persisted (compiled closures cannot
be pickled portably) and re-``exec``'d on load against the loading
process's primitive registry.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

import numpy as np

from ..clsim.environment import CLEnvironment
from ..clsim.events import Event, EventKind
from ..dataflow.network import Network
from ..errors import CodegenError
from ..metrics import NULL_REGISTRY
from ..primitives.base import PrimitiveRegistry, ResultKind
from ..strategies import plancache as _plancache
from ..strategies.bindings import Binding
from ..strategies.fusion import (_as_field_factory, _as_uniform_factory,
                                 _as_vec)
from ..strategies.plancache import ExecutablePlan
from .generator import SweepSource, generate_sweep
from .runtime import aos4, grad3d_rows, grad3d_stack, uniform_float

__all__ = ["CompiledPlan", "compile_plan", "codegen_token"]

# (kind, name, nbytes, sim_seconds) per captured event.
EventTrace = tuple[tuple[EventKind, str, int, float], ...]


def codegen_token(registry: PrimitiveRegistry) -> str:
    """The disk-cache validity token: generator version + registry
    fingerprint.  Either changing invalidates every persisted entry."""
    return f"cg{_plancache.CODEGEN_VERSION}:{registry.fingerprint()}"


def _build_namespace(primitive_names: tuple[str, ...],
                     registry: PrimitiveRegistry, n: int,
                     dtype: np.dtype) -> dict[str, object]:
    namespace: dict[str, object] = {
        "np": np,
        "_grad3d_rows": grad3d_rows,
        "_grad3d_stack": grad3d_stack,
        "_aos4": aos4,
        "_ufloat": uniform_float,
        "_field": _as_field_factory(n, dtype),
        "_vec": _as_vec,
        "_uniform": _as_uniform_factory(dtype),
    }
    for name in primitive_names:
        primitive = registry.get(name)
        if primitive.numpy_fn is None:
            raise CodegenError(
                f"primitive {name!r} has no numpy implementation")
        namespace[f"_p_{name}"] = primitive.numpy_fn
    return namespace


def _compile_fn(source: str, namespace: dict[str, object]):
    exec(compile(source, "<repro-codegen-sweep>", "exec"), namespace)
    return namespace["_sweep"]


def capture_launch(plan: ExecutablePlan,
                   bindings: Mapping[str, Binding],
                   device) -> tuple[EventTrace, int]:
    """Dry-replay the base plan once to record its modeled event trace
    and allocator peak.  The capture environment uses the null metrics
    registry so the rehearsal never shows up in process-wide counters."""
    env = CLEnvironment(device, dry_run=True, backend="vectorized",
                        pooling=False, registry=NULL_REGISTRY)
    plan.launch(bindings, env)
    events = tuple((e.kind, e.name, e.nbytes, e.sim_seconds)
                   for e in env.queue.log.events)
    return events, env.mem_high_water


class CompiledPlan(ExecutablePlan):
    """One compiled sweep plus the captured interpreter event trace."""

    def __init__(self, *, fn, sweep_source: str,
                 params: tuple[str, ...],
                 primitive_names: tuple[str, ...],
                 events: EventTrace, captured_peak: int, **common):
        super().__init__(**common)
        self._fn = fn
        self.sweep_source = sweep_source
        self.params = params
        self.primitive_names = primitive_names
        self.events = events
        self.captured_peak = int(captured_peak)
        kernel_indices = [i for i, e in enumerate(events)
                         if e[0] is EventKind.KERNEL]
        self._last_kernel = kernel_indices[-1] if kernel_indices else None

    def launch(self, bindings: Mapping[str, Binding],
               env: CLEnvironment) -> Optional[np.ndarray]:
        args = [bindings[s].data for s in self.source_order]
        with env.tracer.span("compiled.sweep", category="strategy",
                             kernel="_sweep"):
            start = time.perf_counter()
            output = self._fn(*args)
            wall = time.perf_counter() - start
        # Replay the captured interpreter trace so counts, modeled
        # timings, and transfer-byte counters match the interpreter run
        # exactly; the real sweep wall time rides on the last kernel.
        log = env.queue.log
        for i, (kind, name, nbytes, sim) in enumerate(self.events):
            log.record(Event(kind, name, nbytes, sim_seconds=sim,
                             wall_seconds=(wall if i == self._last_kernel
                                           else 0.0)))
        env.context.allocator.note_external_peak(self.captured_peak)
        return self._broadcast(output)

    # -- disk-cache round trip -------------------------------------------------

    def entry(self) -> dict:
        """JSON-serializable form for the on-disk plan cache."""
        return {
            "strategy_name": self.strategy_name,
            "source_order": list(self.source_order),
            "n": self.n,
            "dtype": str(self.dtype),
            "output_id": self.output_id,
            "output_kind": self.output_kind.name,
            "output_uniform": self.output_uniform,
            "generated_sources": dict(self.generated_sources),
            "sweep_source": self.sweep_source,
            "params": list(self.params),
            "primitives": list(self.primitive_names),
            "events": [[kind.name, name, nbytes, sim]
                       for kind, name, nbytes, sim in self.events],
            "mem_high_water": self.captured_peak,
        }

    @classmethod
    def from_entry(cls, entry: dict,
                   registry: PrimitiveRegistry) -> "CompiledPlan":
        """Rebuild a plan from a disk entry — re-``exec`` the persisted
        sweep source and rebind primitives by name from the live
        registry.  Raises (KeyError/ValueError/PrimitiveError/...) on any
        malformed or stale entry; callers treat that as an invalidation."""
        n = int(entry["n"])
        dtype = np.dtype(entry["dtype"])
        primitive_names = tuple(entry["primitives"])
        sweep_source = entry["sweep_source"]
        fn = _compile_fn(sweep_source,
                         _build_namespace(primitive_names, registry,
                                          n, dtype))
        events = tuple(
            (EventKind[kind], str(name), int(nbytes), float(sim))
            for kind, name, nbytes, sim in entry["events"])
        return cls(
            fn=fn, sweep_source=sweep_source,
            params=tuple(entry["params"]),
            primitive_names=primitive_names,
            events=events,
            captured_peak=int(entry["mem_high_water"]),
            strategy_name=str(entry["strategy_name"]),
            source_order=tuple(entry["source_order"]),
            n=n, dtype=dtype,
            output_id=str(entry["output_id"]),
            output_kind=ResultKind[entry["output_kind"]],
            output_uniform=bool(entry["output_uniform"]),
            generated_sources=dict(entry["generated_sources"]))


def compile_plan(base_plan: ExecutablePlan, network: Network,
                 bindings: Mapping[str, Binding],
                 device) -> CompiledPlan:
    """Generate, compile, and instrument the sweep for one base plan."""
    sweep: SweepSource = generate_sweep(network)
    namespace = _build_namespace(sweep.primitive_names, network.registry,
                                 base_plan.n, base_plan.dtype)
    fn = _compile_fn(sweep.source, namespace)
    events, captured_peak = capture_launch(base_plan, bindings, device)
    return CompiledPlan(
        fn=fn, sweep_source=sweep.source,
        params=sweep.params,
        primitive_names=sweep.primitive_names,
        events=events, captured_peak=captured_peak,
        strategy_name=base_plan.strategy_name,
        source_order=base_plan.source_order,
        n=base_plan.n, dtype=base_plan.dtype,
        output_id=base_plan.output_id,
        output_kind=base_plan.output_kind,
        output_uniform=base_plan.output_uniform,
        generated_sources=dict(base_plan.generated_sources))
