"""Runtime helpers referenced by generated sweep functions.

The sweep generator (:mod:`repro.codegen.generator`) lowers a dataflow
network into the source of one Python function.  That source calls the
small vocabulary defined here:

``grad3d_rows``
    The gradient of one field, returned as three flat row arrays
    (d/dx, d/dy, d/dz) instead of the interpreter's AoS ``(n, 4)``
    layout.  Row form lets the generated code alias decompositions
    (``du[0]``) to locals with zero copies or slicing.

``grad3d_stack``
    The fused multi-field gradient: the paper's expressions take the
    gradient of u, v, and w over the *same* mesh, so the three fields are
    stacked into one ``(F, ni, nj, nk)`` array and each axis derivative
    runs once over the stack instead of once per field.  This is the
    single biggest win of the compiled backend — three trips through the
    difference stencils become one.

``aos4``
    Materializes rows back into the interpreter's padded
    ``(n, VECTOR_WIDTH)`` layout, for consumers that need the whole
    vector (the network output, or a non-decompose consumer).

Every helper is bitwise-faithful to :func:`~repro.primitives.gradient.
grad3d_numpy`: identical difference expressions, identical dtype flow
(float64 cell centers broadcasting against the field's dtype), identical
zero padding.  The stack path additionally relies on the fact that
``_axis_derivative`` is purely elementwise over broadcast operands, so
computing it on a stacked 4-D array yields, per field slice, exactly the
array the 3-D call yields.
"""

from __future__ import annotations

import numpy as np

from ..errors import PrimitiveError
from ..primitives.base import VECTOR_WIDTH
from ..primitives.gradient import _axis_derivative, cell_centers

__all__ = ["grad3d_rows", "grad3d_stack", "aos4", "uniform_float"]


def uniform_float(arrays) -> bool:
    """True when every value is a real array sharing one floating dtype.

    The precondition for a generated sweep's in-place fast body: with
    all dtype-contributing inputs proper arrays of one float dtype,
    weak Python-scalar constants can never promote an intermediate and
    every param-derived value is an ndarray, so donating a dead
    temporary as a ufunc ``out=`` buffer is cast-free and the in-place
    statements stay bitwise-identical to the pure-SSA fallback."""
    dtypes = set()
    for a in arrays:
        if not isinstance(a, np.ndarray) or a.ndim == 0:
            return False
        dtypes.add(a.dtype)
    return len(dtypes) == 1 and dtypes.pop().kind == "f"


def _mesh_dims(dims) -> tuple[int, int, int]:
    ni, nj, nk = (int(d) for d in np.asarray(dims).ravel()[:3])
    return ni, nj, nk


def _check_coords(ni: int, nj: int, nk: int, x, y, z) -> None:
    for name, coord, want in (("x", x, ni + 1), ("y", y, nj + 1),
                              ("z", z, nk + 1)):
        if np.asarray(coord).size != want:
            raise PrimitiveError(
                f"{name} has {np.asarray(coord).size} points; "
                f"expected {want}")


def _check_field(field: np.ndarray, ni: int, nj: int, nk: int,
                 ) -> np.ndarray:
    field = np.asarray(field)
    n_cells = ni * nj * nk
    if field.size != n_cells:
        raise PrimitiveError(
            f"field has {field.size} values but dims {ni}x{nj}x{nk} "
            f"imply {n_cells} cells")
    return field.reshape(ni, nj, nk)


def grad3d_rows(field, dims, x, y, z,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradient of one flat cell-centered field as three flat rows."""
    ni, nj, nk = _mesh_dims(dims)
    f = _check_field(field, ni, nj, nk)
    _check_coords(ni, nj, nk, x, y, z)
    return (_axis_derivative(f, cell_centers(x), 0).ravel(),
            _axis_derivative(f, cell_centers(y), 1).ravel(),
            _axis_derivative(f, cell_centers(z), 2).ravel())


def grad3d_stack(fields, dims, x, y, z) -> tuple[np.ndarray, ...]:
    """Gradients of several fields over one shared mesh.

    Returns a flat tuple grouped per field:
    ``(f0_dx, f0_dy, f0_dz, f1_dx, f1_dy, f1_dz, ...)``.
    """
    ni, nj, nk = _mesh_dims(dims)
    arrays = [_check_field(f, ni, nj, nk) for f in fields]
    _check_coords(ni, nj, nk, x, y, z)
    cx, cy, cz = cell_centers(x), cell_centers(y), cell_centers(z)
    if len({a.dtype for a in arrays}) > 1:
        # np.stack would upcast mixed dtypes; keep per-field precision.
        rows: list[np.ndarray] = []
        for f in arrays:
            rows.extend((_axis_derivative(f, cx, 0).ravel(),
                         _axis_derivative(f, cy, 1).ravel(),
                         _axis_derivative(f, cz, 2).ravel()))
        return tuple(rows)
    stacked = np.stack(arrays)
    dx = _axis_derivative(stacked, cx, 1)
    dy = _axis_derivative(stacked, cy, 2)
    dz = _axis_derivative(stacked, cz, 3)
    rows = []
    for i in range(len(arrays)):
        rows.extend((dx[i].ravel(), dy[i].ravel(), dz[i].ravel()))
    return tuple(rows)


def aos4(r0: np.ndarray, r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Rows back to the padded ``(n, VECTOR_WIDTH)`` vector layout."""
    out = np.zeros((r0.size, VECTOR_WIDTH), dtype=r0.dtype)
    out[:, 0] = r0
    out[:, 1] = r1
    out[:, 2] = r2
    return out
