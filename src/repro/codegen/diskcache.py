"""Persistent on-disk cache of compiled plans.

PyOP2 caches its runtime-generated backend modules on disk so a restarted
process skips recompilation; this module does the same for compiled sweep
plans.  One JSON file per plan under a cache root
(``~/.cache/repro/plans`` by default, ``--plan-cache-dir`` to override):

* **filename** — SHA-256 of ``repr(PlanKey)``.  The key already contains
  the network signature, strategy token, dtype, element count, source
  shapes, device identity, backend, and the primitive-registry
  fingerprint, so any change to any of them lands on a different file.
* **payload** — ``{"schema", "token", "key", "entry"}``.  ``token`` is
  :func:`~repro.codegen.compiled.codegen_token` (generator version +
  registry fingerprint): a generator change keeps the filename but fails
  the token check, so stale entries self-invalidate.  ``key`` stores the
  full ``repr`` to rule out (astronomically unlikely) hash collisions
  and to make entries self-describing for humans.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a torn entry, and every failure mode —
missing file, unreadable file, malformed JSON, schema/token/key mismatch
— degrades to a miss or an invalidation, never an exception on the
execution path.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["DiskLookup", "PlanDiskCache", "default_plan_cache_dir"]

SCHEMA_VERSION = 1


def default_plan_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro/plans`` (or ``~/.cache/repro/plans``)."""
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "repro" / "plans"


@dataclass(frozen=True)
class DiskLookup:
    """Result of one disk probe.

    ``status`` is ``"hit"`` (entry returned), ``"miss"`` (no usable
    file), or ``"invalid"`` (a file existed but was stale, corrupt, or
    foreign — it has been unlinked so the rebuilt plan replaces it).
    """

    status: str
    entry: Optional[dict] = None


class PlanDiskCache:
    """Directory of atomically-written compiled-plan entries.

    Safe to share between engines, service workers, and processes: reads
    never block writes, writes are atomic replacements, and duplicate
    writes of the same key are idempotent (same content, last one wins).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()

    def _path(self, key) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.root / f"{digest}.json"

    def store(self, key, token: str, entry: dict) -> bool:
        """Persist one entry; returns False (never raises) on I/O
        failure — a read-only cache dir degrades to cold compiles."""
        payload = {"schema": SCHEMA_VERSION, "token": token,
                   "key": repr(key), "entry": entry}
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            from ..obs.log import get_logger
            get_logger().warning("diskcache.store_failed",
                                 plan_key=repr(key), path=str(path),
                                 error=f"{type(exc).__name__}: {exc}")
            return False
        return True

    def load(self, key, token: str) -> DiskLookup:
        path = self._path(key)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError):
            return DiskLookup("miss")
        try:
            payload = json.loads(text)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != SCHEMA_VERSION
                    or payload.get("token") != token
                    or payload.get("key") != repr(key)
                    or not isinstance(payload.get("entry"), dict)):
                raise ValueError("stale or foreign plan-cache entry")
        except (ValueError, TypeError):
            # Corrupt, truncated, or out-of-date: drop it so the freshly
            # compiled plan takes its place.
            self.invalidate(key)
            return DiskLookup("invalid")
        return DiskLookup("hit", payload["entry"])

    def invalidate(self, key) -> None:
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(1 for p in self.root.glob("*.json"))
        except OSError:
            return 0
