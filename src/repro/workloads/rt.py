"""Synthetic Rayleigh-Taylor-like velocity fields.

The paper's input is a time step of a 3072^3 DNS Rayleigh-Taylor
instability run (Cabot & Cook), which is not redistributable.  The derived
field computations are value-independent — identical FLOPs and bytes for
any input — so for the reproduction we synthesize a velocity field with
the *qualitative* RT character the visualizations rely on: a mixing-layer
band of multi-mode vortical perturbations decaying away from the midplane,
plus a buoyant large-scale overturn.

The construction superposes a few solenoidal Fourier modes derived from a
vector potential, so the synthetic field is (discretely, approximately)
divergence-free like a real incompressible DNS field, and it produces
non-trivial vorticity and Q-criterion structure for the examples and
renders.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rt_velocity", "mixing_layer_profile"]


def mixing_layer_profile(zc: np.ndarray, center: float = 0.5,
                         width: float = 0.2) -> np.ndarray:
    """Amplitude envelope concentrating perturbations near the midplane,
    like an RT mixing layer."""
    return np.exp(-((zc - center) / width) ** 2)


def rt_velocity(dims: tuple[int, int, int], x: np.ndarray, y: np.ndarray,
                z: np.ndarray, *, seed: int = 0, n_modes: int = 6,
                dtype=np.float64) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthesize (u, v, w) cell-centered velocity components.

    Each mode contributes curl(A) for a random-phase vector potential A
    with wavenumbers up to ``n_modes``; curls of smooth potentials are
    exactly divergence-free in the continuum.  Returns flat C-order arrays
    of length ``prod(dims)``.
    """
    ni, nj, nk = dims
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)

    xc = 0.5 * (x[:-1] + x[1:]).astype(dtype)
    yc = 0.5 * (y[:-1] + y[1:]).astype(dtype)
    zc = 0.5 * (z[:-1] + z[1:]).astype(dtype)
    # Normalize coordinates so mode wavenumbers are extent-independent.
    def norm(c):
        span = c[-1] - c[0] if c.size > 1 else 1.0
        return (c - c[0]) / (span if span != 0 else 1.0)

    X = norm(xc)[:, None, None]
    Y = norm(yc)[None, :, None]
    Z = norm(zc)[None, None, :]

    u = np.zeros((ni, nj, nk), dtype=dtype)
    v = np.zeros_like(u)
    w = np.zeros_like(u)

    two_pi = 2.0 * np.pi
    for _ in range(n_modes):
        kx, ky, kz = rng.integers(1, n_modes + 1, size=3)
        px, py, pz = rng.uniform(0, two_pi, size=3)
        amp = rng.uniform(0.3, 1.0) / np.sqrt(kx * kx + ky * ky + kz * kz)
        sx = np.sin(two_pi * kx * X + px)
        cx = np.cos(two_pi * kx * X + px)
        sy = np.sin(two_pi * ky * Y + py)
        cy = np.cos(two_pi * ky * Y + py)
        sz = np.sin(two_pi * kz * Z + pz)
        cz = np.cos(two_pi * kz * Z + pz)
        # curl of A = amp * (sx sy sz) * (1,1,1) (up to phase shifts):
        # an ABC-flow-like solenoidal contribution.
        u += amp * (ky * sx * cy * sz - kz * sx * sy * cz)
        v += amp * (kz * cx * sy * cz - kx * sx * sy * cz)
        w += amp * (kx * cx * sy * sz - ky * sx * cy * sz)

    envelope = mixing_layer_profile(np.asarray(Z, dtype=dtype))
    u *= envelope
    v *= envelope
    # Large-scale RT overturn: heavy fluid falling through light.
    w = w * envelope + 0.5 * np.sin(np.pi * Z) * np.cos(two_pi * X) \
        * np.cos(two_pi * Y)

    return (np.ascontiguousarray(u.ravel()),
            np.ascontiguousarray(v.ravel()),
            np.ascontiguousarray(w.ravel()))
