"""Analytic test fields with exact derived quantities.

Linear and polynomial fields whose gradients the discrete scheme must
reproduce exactly (central + one-sided differences are exact for linear
fields, and central differences for quadratics on uniform grids), used by
unit and property-based tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["linear_field", "quadratic_field", "cell_center_grids"]


def cell_center_grids(x, y, z):
    """(X, Y, Z) cell-center meshgrids for point coordinate arrays."""
    xc = 0.5 * (np.asarray(x)[:-1] + np.asarray(x)[1:])
    yc = 0.5 * (np.asarray(y)[:-1] + np.asarray(y)[1:])
    zc = 0.5 * (np.asarray(z)[:-1] + np.asarray(z)[1:])
    return np.meshgrid(xc, yc, zc, indexing="ij")


def linear_field(x, y, z, coefficients=(2.0, -3.0, 0.5),
                 offset: float = 1.0):
    """``a*x + b*y + c*z + offset`` with its exact (constant) gradient.

    Returns ``(field_flat, gradient)`` where gradient is the coefficient
    triple — exact for this discretization on any rectilinear mesh.
    """
    a, b, c = coefficients
    X, Y, Z = cell_center_grids(x, y, z)
    f = a * X + b * Y + c * Z + offset
    return f.ravel(), np.asarray(coefficients, dtype=float)


def quadratic_field(x, y, z, coefficients=(1.0, 2.0, -1.0)):
    """``a*x^2 + b*y^2 + c*z^2`` with its exact gradient arrays.

    Central differences are exact for quadratics at interior cells of a
    uniform mesh; the returned exact gradient lets tests check interior
    cells tightly and boundary cells to first order.
    """
    a, b, c = coefficients
    X, Y, Z = cell_center_grids(x, y, z)
    f = a * X * X + b * Y * Y + c * Z * Z
    grad = np.stack([(2 * a * X).ravel(), (2 * b * Y).ravel(),
                     (2 * c * Z).ravel()], axis=1)
    return f.ravel(), grad
