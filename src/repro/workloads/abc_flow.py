"""The Arnold-Beltrami-Childress (ABC) flow.

    u = A sin(z) + C cos(y)
    v = B sin(x) + A cos(z)
    w = C sin(y) + B cos(x)

on the periodic cube [0, 2*pi]^3.  ABC flow is a *Beltrami* field:
``curl(V) = V`` exactly — the strongest possible validation target for the
``curl3d`` mesh operator, and a classic chaotic-streamline workload for
vortex-detection demos.  Its Q-criterion also has a closed form, derived
from the analytic velocity gradients (implemented below).
"""

from __future__ import annotations

import numpy as np

__all__ = ["abc_velocity", "abc_fields", "abc_q_criterion"]

TWO_PI = 2.0 * np.pi


def _center_grids(x, y, z):
    xc = 0.5 * (np.asarray(x)[:-1] + np.asarray(x)[1:])
    yc = 0.5 * (np.asarray(y)[:-1] + np.asarray(y)[1:])
    zc = 0.5 * (np.asarray(z)[:-1] + np.asarray(z)[1:])
    return np.meshgrid(xc, yc, zc, indexing="ij")


def abc_velocity(x, y, z, *, A: float = 1.0, B: float = np.sqrt(2.0 / 3.0),
                 C: float = np.sqrt(1.0 / 3.0)):
    """Cell-centered (u, v, w) of the ABC flow, flat C-order."""
    X, Y, Z = _center_grids(x, y, z)
    u = A * np.sin(Z) + C * np.cos(Y)
    v = B * np.sin(X) + A * np.cos(Z)
    w = C * np.sin(Y) + B * np.cos(X)
    return u.ravel(), v.ravel(), w.ravel()


def abc_q_criterion(x, y, z, *, A: float = 1.0,
                    B: float = np.sqrt(2.0 / 3.0),
                    C: float = np.sqrt(1.0 / 3.0)) -> np.ndarray:
    """Analytic Q = 0.5 (||Omega||^2 - ||S||^2) of the ABC flow.

    For a Beltrami field omega = V, so ||Omega||^2 = 0.5 |V|^2 in tensor
    norm; the strain norm follows from the analytic gradient tensor.
    """
    X, Y, Z = _center_grids(x, y, z)
    # gradient tensor entries
    du_dy = -C * np.sin(Y)
    du_dz = A * np.cos(Z)
    dv_dx = B * np.cos(X)
    dv_dz = -A * np.sin(Z)
    dw_dx = -B * np.sin(X)
    dw_dy = C * np.cos(Y)
    s_xy = 0.5 * (du_dy + dv_dx)
    s_xz = 0.5 * (du_dz + dw_dx)
    s_yz = 0.5 * (dv_dz + dw_dy)
    o_xy = 0.5 * (du_dy - dv_dx)
    o_xz = 0.5 * (du_dz - dw_dx)
    o_yz = 0.5 * (dv_dz - dw_dy)
    s_norm2 = 2.0 * (s_xy ** 2 + s_xz ** 2 + s_yz ** 2)
    w_norm2 = 2.0 * (o_xy ** 2 + o_xz ** 2 + o_yz ** 2)
    return (0.5 * (w_norm2 - s_norm2)).ravel()


def abc_fields(dims: tuple[int, int, int], *, A: float = 1.0,
               B: float = np.sqrt(2.0 / 3.0),
               C: float = np.sqrt(1.0 / 3.0),
               dtype=np.float64) -> dict[str, np.ndarray]:
    """Full host-binding dict on the periodic cube [0, 2*pi]^3."""
    ni, nj, nk = dims
    x = np.linspace(0.0, TWO_PI, ni + 1, dtype=dtype)
    y = np.linspace(0.0, TWO_PI, nj + 1, dtype=dtype)
    z = np.linspace(0.0, TWO_PI, nk + 1, dtype=dtype)
    u, v, w = abc_velocity(x, y, z, A=A, B=B, C=C)
    return {
        "u": u.astype(dtype), "v": v.astype(dtype), "w": w.astype(dtype),
        "dims": np.asarray(dims, dtype=np.int32),
        "x": x, "y": y, "z": z,
    }
