"""Evaluation workloads: the Table I grid catalogue, synthetic
Rayleigh-Taylor-like fields (substituting the proprietary LLNL DNS data),
the analytically-solvable Taylor-Green vortex, and simple analytic fields
for exactness tests."""

from .abc_flow import abc_fields, abc_q_criterion, abc_velocity
from .analytic import cell_center_grids, linear_field, quadratic_field
from .datasets import (FULL_DATASET, SubGrid, TABLE1_SUBGRIDS, make_fields,
                       make_mesh, make_shapes, scaled_subgrids)
from .rt import mixing_layer_profile, rt_velocity
from .taylor_green import (taylor_green_fields, taylor_green_q_criterion,
                           taylor_green_velocity, taylor_green_vorticity)

__all__ = [
    "SubGrid", "TABLE1_SUBGRIDS", "FULL_DATASET", "make_mesh",
    "make_shapes", "make_fields", "scaled_subgrids",
    "rt_velocity", "mixing_layer_profile",
    "taylor_green_fields", "taylor_green_velocity",
    "taylor_green_vorticity", "taylor_green_q_criterion",
    "linear_field", "quadratic_field", "cell_center_grids",
    "abc_fields", "abc_velocity", "abc_q_criterion",
]
