"""Taylor-Green vortex: a velocity field with closed-form vorticity and
Q-criterion, used to *validate* the framework's numerics end to end (a
check the paper's proprietary DNS data could not provide).

    u =  A cos(k x) sin(k y) sin(k z)
    v = -A sin(k x) cos(k y) sin(k z)
    w =  0

This field is divergence-free.  Its vorticity and Q-criterion follow from
the analytic velocity gradient tensor and are implemented below directly
from the trigonometric derivatives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["taylor_green_velocity", "taylor_green_vorticity",
           "taylor_green_q_criterion", "taylor_green_fields"]


def _centers(points: np.ndarray) -> np.ndarray:
    return 0.5 * (points[:-1] + points[1:])


def _grids(x, y, z):
    xc, yc, zc = _centers(x), _centers(y), _centers(z)
    return np.meshgrid(xc, yc, zc, indexing="ij")


def taylor_green_velocity(x, y, z, *, amplitude: float = 1.0,
                          k: float = 2.0 * np.pi):
    """Cell-centered (u, v, w), flat C-order."""
    X, Y, Z = _grids(x, y, z)
    u = amplitude * np.cos(k * X) * np.sin(k * Y) * np.sin(k * Z)
    v = -amplitude * np.sin(k * X) * np.cos(k * Y) * np.sin(k * Z)
    w = np.zeros_like(u)
    return u.ravel(), v.ravel(), w.ravel()


def taylor_green_vorticity(x, y, z, *, amplitude: float = 1.0,
                           k: float = 2.0 * np.pi) -> np.ndarray:
    """Analytic curl of the velocity, shape (n, 3)."""
    X, Y, Z = _grids(x, y, z)
    a, s, c = amplitude, np.sin, np.cos
    # w = 0, so omega_x = -dv/dz, omega_y = du/dz,
    # omega_z = dv/dx - du/dy.
    wx = a * k * s(k * X) * c(k * Y) * c(k * Z)
    wy = a * k * c(k * X) * s(k * Y) * c(k * Z)
    wz = -2.0 * a * k * c(k * X) * c(k * Y) * s(k * Z)
    return np.stack([wx.ravel(), wy.ravel(), wz.ravel()], axis=1)


def taylor_green_q_criterion(x, y, z, *, amplitude: float = 1.0,
                             k: float = 2.0 * np.pi) -> np.ndarray:
    """Analytic Q = 0.5 (||Omega||^2 - ||S||^2)."""
    X, Y, Z = _grids(x, y, z)
    a, s, c = amplitude, np.sin, np.cos
    # Velocity gradient tensor entries.
    du_dx = -a * k * s(k * X) * s(k * Y) * s(k * Z)
    du_dy = a * k * c(k * X) * c(k * Y) * s(k * Z)
    du_dz = a * k * c(k * X) * s(k * Y) * c(k * Z)
    dv_dx = -a * k * c(k * X) * c(k * Y) * s(k * Z)
    dv_dy = a * k * s(k * X) * s(k * Y) * s(k * Z)
    dv_dz = -a * k * s(k * X) * c(k * Y) * c(k * Z)
    zero = np.zeros_like(du_dx)
    j = np.stack([
        np.stack([du_dx, du_dy, du_dz], axis=-1),
        np.stack([dv_dx, dv_dy, dv_dz], axis=-1),
        np.stack([zero, zero, zero], axis=-1),
    ], axis=-2)
    jt = np.swapaxes(j, -1, -2)
    s_t = 0.5 * (j + jt)
    o_t = 0.5 * (j - jt)
    s_norm2 = np.einsum("...ij,...ij->...", s_t, s_t)
    w_norm2 = np.einsum("...ij,...ij->...", o_t, o_t)
    return (0.5 * (w_norm2 - s_norm2)).ravel()


def taylor_green_fields(dims: tuple[int, int, int], *,
                        amplitude: float = 1.0,
                        dtype=np.float64) -> dict[str, np.ndarray]:
    """Full host-binding dict (u, v, w, dims, x, y, z) on the unit cube."""
    ni, nj, nk = dims
    x = np.linspace(0.0, 1.0, ni + 1, dtype=dtype)
    y = np.linspace(0.0, 1.0, nj + 1, dtype=dtype)
    z = np.linspace(0.0, 1.0, nk + 1, dtype=dtype)
    u, v, w = taylor_green_velocity(x, y, z, amplitude=amplitude)
    return {
        "u": u.astype(dtype), "v": v.astype(dtype), "w": w.astype(dtype),
        "dims": np.asarray(dims, dtype=np.int32),
        "x": x, "y": y, "z": z,
    }
