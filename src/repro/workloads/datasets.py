"""Table I dataset catalogue and rectilinear-mesh construction.

The paper's single-device evaluation sweeps twelve sub-grids of a 3072^3
Rayleigh-Taylor DNS time step, 192 x 192 x (256..3072) cells, with
cell-centered float64 velocity components (u, v, w) and point coordinates
(x, y, z).  The quoted "Data Size" column is the three velocity arrays at
8 bytes per cell (216 MiB for the smallest grid, which the paper rounds to
218 MB).

The original LLNL data is unavailable; :func:`make_fields` synthesizes a
velocity field with vortical structure on the same grids (see
:mod:`repro.workloads.rt`), and :func:`make_shapes` produces shape-only
bindings for full-scale dry-run planning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..strategies.bindings import ArraySpec

__all__ = ["SubGrid", "TABLE1_SUBGRIDS", "FULL_DATASET", "make_mesh",
           "make_shapes", "make_fields", "scaled_subgrids"]

N_VELOCITY_COMPONENTS = 3


@dataclass(frozen=True)
class SubGrid:
    """One evaluation grid: cell dimensions and derived size metadata."""

    ni: int
    nj: int
    nk: int

    @property
    def dims(self) -> tuple[int, int, int]:
        return (self.ni, self.nj, self.nk)

    @property
    def n_cells(self) -> int:
        return self.ni * self.nj * self.nk

    def data_size_bytes(self, itemsize: int = 8) -> int:
        """The Table I "Data Size": the velocity arrays."""
        return self.n_cells * N_VELOCITY_COMPONENTS * itemsize

    def label(self) -> str:
        return f"{self.ni}x{self.nj}x{self.nk:04d}"


# Table I: 192 x 192 x (256 * k) for k = 1..12.
TABLE1_SUBGRIDS: tuple[SubGrid, ...] = tuple(
    SubGrid(192, 192, 256 * k) for k in range(1, 13))

# The full 3072^3 time step: 3072 sub-grids of 192 x 192 x 256 (the paper
# rounds its 29.0e9 cells to "27 billion").
FULL_DATASET = {
    "global_dims": (3072, 3072, 3072),
    "block_dims": (192, 192, 256),
    "n_blocks": 3072,
    "n_gpus": 256,
    "n_nodes": 128,
    "blocks_per_gpu": 12,
}


def scaled_subgrids(factor: int) -> tuple[SubGrid, ...]:
    """Table I shrunk by ``factor`` per axis, preserving the 12-point sweep
    shape for wall-clock benchmarking on small machines."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return tuple(SubGrid(max(2, 192 // factor), max(2, 192 // factor),
                         max(2, (256 * k) // factor))
                 for k in range(1, 13))


def make_mesh(dims: tuple[int, int, int],
              extent: tuple[float, float, float] = (1.0, 1.0, 1.0),
              dtype=np.float64) -> dict[str, np.ndarray]:
    """Rectilinear point coordinates + dims array for a cell grid."""
    ni, nj, nk = dims
    return {
        "dims": np.asarray([ni, nj, nk], dtype=np.int32),
        "x": np.linspace(0.0, extent[0], ni + 1, dtype=dtype),
        "y": np.linspace(0.0, extent[1], nj + 1, dtype=dtype),
        "z": np.linspace(0.0, extent[2], nk + 1, dtype=dtype),
    }


def make_shapes(grid: SubGrid, dtype=np.float64) -> dict[str, ArraySpec]:
    """Shape-only bindings for dry-run planning at full paper scale."""
    dtype = np.dtype(dtype)
    n = grid.n_cells
    return {
        "u": ArraySpec((n,), dtype),
        "v": ArraySpec((n,), dtype),
        "w": ArraySpec((n,), dtype),
        "dims": ArraySpec((3,), np.dtype(np.int32)),
        "x": ArraySpec((grid.ni + 1,), dtype),
        "y": ArraySpec((grid.nj + 1,), dtype),
        "z": ArraySpec((grid.nk + 1,), dtype),
    }


def make_fields(grid: SubGrid, *, seed: int = 0,
                dtype=np.float64) -> dict[str, np.ndarray]:
    """Mesh plus a synthetic vortical velocity field on ``grid``."""
    from .rt import rt_velocity  # local import to avoid a cycle

    mesh = make_mesh(grid.dims, dtype=dtype)
    u, v, w = rt_velocity(grid.dims, mesh["x"], mesh["y"], mesh["z"],
                          seed=seed, dtype=dtype)
    return {"u": u, "v": v, "w": w, **mesh}
