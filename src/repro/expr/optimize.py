"""Network-level optimizations applied after lowering.

The paper: *"common constants are reduced to single instances of source
filters. We also use a limited common sub-expression elimination strategy to
avoid computing unnecessary intermediate results."*

Constant pooling happens during construction
(:meth:`~repro.dataflow.spec.NetworkSpec.add_const`).  This module provides
the CSE pass.  Matching the paper's "limited" strategy, the default is
purely syntactic: ``0.5*(du[1]+dv[0])`` and ``0.5*(dv[0]+du[1])`` are
*different* (operand order differs), which is what makes Q-criterion lower
to exactly 57 roundtrip kernels (Table II).  ``commutative=True`` enables
the stronger, operand-order-normalizing variant as an extension (ablated in
``benchmarks/bench_ablation_cse.py``).
"""

from __future__ import annotations

from typing import Optional

from ..dataflow.spec import CONST, SOURCE, NetworkSpec
from ..primitives.base import PrimitiveRegistry
from ..primitives.registry import DEFAULT_REGISTRY

__all__ = ["eliminate_common_subexpressions"]


def eliminate_common_subexpressions(
        spec: NetworkSpec, *,
        commutative: bool = False,
        registry: Optional[PrimitiveRegistry] = None) -> NetworkSpec:
    """Merge structurally identical filter invocations.

    Nodes are scanned in construction order (guaranteed topological);
    a node whose (filter, remapped-inputs, params) signature was already
    seen is replaced by the first occurrence everywhere downstream.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    replacement: dict[str, str] = {}
    seen: dict[tuple, str] = {}
    keep: list[str] = []
    for node in spec.nodes:
        if node.filter in (SOURCE, CONST):
            keep.append(node.id)
            continue
        inputs = tuple(replacement.get(i, i) for i in node.inputs)
        if (commutative and node.filter in registry
                and registry.get(node.filter).commutative):
            inputs = tuple(sorted(inputs))
        key = (node.filter, inputs, node.params)
        survivor = seen.get(key)
        if survivor is None:
            seen[key] = node.id
            keep.append(node.id)
        else:
            replacement[node.id] = survivor
    return spec.rewrite(keep, replacement)
