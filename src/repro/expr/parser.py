"""Public parsing entry point for user expressions.

The lexer and LALR(1) table are built once per process and reused — table
construction is the expensive step, and an in-situ host calls
:func:`parse` once per expression per time step.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import ExpressionError
from ..lexyacc import Lexer, LRParser
from .ast import Program
from .grammar import expression_grammar
from .lexrules import expression_lexer

__all__ = ["parse", "parser_diagnostics"]


@lru_cache(maxsize=1)
def _machinery() -> tuple[Lexer, LRParser]:
    return expression_lexer(), LRParser(expression_grammar())


def parse(text: str) -> Program:
    """Parse an expression program into its AST.

    >>> parse("v_mag = sqrt(u*u + v*v + w*w)").result_name
    'v_mag'
    """
    if not text or not text.strip():
        raise ExpressionError("empty expression")
    lexer, parser = _machinery()
    result = parser.parse(lexer.tokens(text))
    assert isinstance(result, Program)
    return result


def parser_diagnostics() -> dict:
    """Table statistics for tests and debugging."""
    _, parser = _machinery()
    table = parser.table
    return {
        "states": table.n_states,
        "conflicts": list(table.conflicts),
        "precedence_resolutions": len(table.resolutions),
    }
