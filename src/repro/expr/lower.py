"""Lower a parsed expression AST into a dataflow network specification.

This is the parse-tree traversal of Section III-A: filter invocations get
generic names as they are encountered, assignment statements alias user
names onto them, binary operators translate to their dataflow filter names,
and bracket accesses become ``decompose`` filters.  Free identifiers become
``source`` nodes — the arrays the host application binds at execution time.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..dataflow.spec import NetworkSpec
from ..errors import LoweringError
from ..primitives.base import PrimitiveRegistry, ResultKind
from ..primitives.registry import DEFAULT_REGISTRY
from . import ast

__all__ = ["lower", "OP_FILTERS", "COMPARE_FILTERS", "FUNCTION_ALIASES"]

OP_FILTERS = {"+": "add", "-": "sub", "*": "mult", "/": "div"}
COMPARE_FILTERS = {"<": "lt", ">": "gt", "<=": "le", ">=": "ge",
                   "==": "eq", "!=": "ne"}
# Convenience names accepted in expressions, in the VisIt calculator style.
FUNCTION_ALIASES = {"norm": "vmag", "magnitude": "vmag", "grad": "grad3d"}


class _Lowerer:
    def __init__(self, registry: PrimitiveRegistry,
                 known_fields: Optional[Mapping[str, ResultKind]]):
        self.spec = NetworkSpec()
        self.registry = registry
        self.known_fields = known_fields
        self.env: dict[str, str] = {}
        self.source_kinds: dict[str, ResultKind] = {}

    def run(self, program: ast.Program) -> NetworkSpec:
        for statement in program.statements:
            node_id = self.visit(statement.expr)
            self.env[statement.name] = node_id
            self.spec.alias(statement.name, node_id)
        self.spec.set_output(self.env[program.result_name])
        return self.spec

    # -- expression dispatch ------------------------------------------------

    def visit(self, node: ast.Expr) -> str:
        method = getattr(self, f"_visit_{type(node).__name__.lower()}", None)
        if method is None:  # pragma: no cover - AST is closed
            raise LoweringError(f"cannot lower {type(node).__name__}")
        return method(node)

    def _visit_num(self, node: ast.Num) -> str:
        return self.spec.add_const(node.value)

    def _visit_ident(self, node: ast.Ident) -> str:
        if node.name in self.env:
            return self.env[node.name]
        if self.known_fields is not None:
            if node.name not in self.known_fields:
                raise LoweringError(
                    f"unknown variable {node.name!r}: not assigned earlier "
                    f"and not among host fields "
                    f"{sorted(self.known_fields)}")
            self.source_kinds[node.name] = self.known_fields[node.name]
        source_id = self.spec.add_source(node.name)
        self.env[node.name] = source_id
        return source_id

    def _visit_binop(self, node: ast.BinOp) -> str:
        return self.spec.add_filter(
            OP_FILTERS[node.op], [self.visit(node.left),
                                  self.visit(node.right)])

    def _visit_unaryop(self, node: ast.UnaryOp) -> str:
        return self.spec.add_filter("neg", [self.visit(node.operand)])

    def _visit_compare(self, node: ast.Compare) -> str:
        return self.spec.add_filter(
            COMPARE_FILTERS[node.op], [self.visit(node.left),
                                       self.visit(node.right)])

    def _visit_call(self, node: ast.Call) -> str:
        name = FUNCTION_ALIASES.get(node.name, node.name)
        if name not in self.registry:
            raise LoweringError(
                f"unknown filter {node.name!r}; available: "
                f"{self.registry.names()}")
        primitive = self.registry.get(name)
        if len(node.args) != primitive.arity:
            raise LoweringError(
                f"{node.name} takes {primitive.arity} arguments, "
                f"got {len(node.args)}")
        return self.spec.add_filter(
            name, [self.visit(a) for a in node.args])

    def _visit_index(self, node: ast.Index) -> str:
        return self.spec.add_filter(
            "decompose", [self.visit(node.base)],
            params={"component": node.component})

    def _visit_ifexpr(self, node: ast.IfExpr) -> str:
        return self.spec.add_filter(
            "select", [self.visit(node.cond), self.visit(node.then),
                       self.visit(node.otherwise)])


def lower(program: ast.Program,
          registry: Optional[PrimitiveRegistry] = None,
          known_fields: Optional[Mapping[str, ResultKind]] = None,
          ) -> tuple[NetworkSpec, dict[str, ResultKind]]:
    """Lower ``program`` to a network spec.

    Returns ``(spec, source_kinds)`` where ``source_kinds`` records any
    non-scalar input fields discovered from ``known_fields``.
    """
    lowerer = _Lowerer(registry if registry is not None else DEFAULT_REGISTRY,
                       known_fields)
    spec = lowerer.run(program)
    return spec, lowerer.source_kinds
