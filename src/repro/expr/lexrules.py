"""Token definitions for the expression language lexer."""

from __future__ import annotations

from ..lexyacc import LexerSpec, TokenRule, build_lexer

__all__ = ["EXPR_LEXER_SPEC", "expression_lexer"]


def _number(text: str) -> float:
    return float(text)


EXPR_LEXER_SPEC = LexerSpec(
    rules=[
        TokenRule("COMMENT", r"#[^\n]*", lambda _: None),
        TokenRule("NUMBER",
                  r"(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?", _number),
        TokenRule("IDENT", r"[A-Za-z_]\w*", str),
        # two-character operators before their one-character prefixes
        TokenRule("LE", r"<="), TokenRule("GE", r">="),
        TokenRule("EQEQ", r"=="), TokenRule("NEQ", r"!="),
        TokenRule("LT", r"<"), TokenRule("GT", r">"),
        TokenRule("ASSIGN", r"="),
        TokenRule("PLUS", r"\+"), TokenRule("MINUS", r"-"),
        TokenRule("TIMES", r"\*"), TokenRule("DIVIDE", r"/"),
        TokenRule("LPAREN", r"\("), TokenRule("RPAREN", r"\)"),
        TokenRule("LBRACKET", r"\["), TokenRule("RBRACKET", r"\]"),
        TokenRule("COMMA", r","),
        TokenRule("SEMI", r";", lambda _: None),  # optional separators
    ],
    keywords={"if": "IF", "then": "THEN", "else": "ELSE"},
    identifier_rule="IDENT",
)


def expression_lexer():
    """Build the (stateless, reusable) expression lexer."""
    return build_lexer(EXPR_LEXER_SPEC)
