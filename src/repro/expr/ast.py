"""Abstract syntax tree for the expression language.

The grammar mirrors the paper's examples (Fig 3 and the introduction):
assignment statements over arithmetic, function invocations, C-style
bracket component access, comparisons, and ``if (c) then (a) else (b)``
conditionals.  A parsed program is a :class:`Program` — a list of
statements whose final statement defines the derived field returned to the
host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Num", "Ident", "BinOp", "UnaryOp", "Compare", "Call", "Index",
           "IfExpr", "Assign", "Program", "Expr", "walk"]


@dataclass(frozen=True)
class Num:
    """A numeric literal."""

    value: float


@dataclass(frozen=True)
class Ident:
    """A variable reference: an earlier assignment or an input field."""

    name: str


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: op in {'+', '-', '*', '/'}."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """Unary arithmetic: op in {'-'}."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Compare:
    """Comparison: op in {'<', '>', '<=', '>=', '==', '!='}."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call:
    """A filter invocation: ``grad3d(u, dims, x, y, z)``."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Index:
    """Bracket component access: ``du[1]`` (the decompose filter)."""

    base: "Expr"
    component: int


@dataclass(frozen=True)
class IfExpr:
    """``if (cond) then (a) else (b)`` from the paper's introduction."""

    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"


Expr = Union[Num, Ident, BinOp, UnaryOp, Compare, Call, Index, IfExpr]


@dataclass(frozen=True)
class Assign:
    """``name = expr``; "simple" or "nested" statements alike."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class Program:
    """A full user expression: one or more statements."""

    statements: tuple[Assign, ...]

    @property
    def result_name(self) -> str:
        return self.statements[-1].name


def walk(node):
    """Yield ``node`` and all AST nodes beneath it (pre-order)."""
    yield node
    if isinstance(node, Program):
        children: tuple = node.statements
    elif isinstance(node, Assign):
        children = (node.expr,)
    elif isinstance(node, (BinOp, Compare)):
        children = (node.left, node.right)
    elif isinstance(node, UnaryOp):
        children = (node.operand,)
    elif isinstance(node, Call):
        children = node.args
    elif isinstance(node, Index):
        children = (node.base,)
    elif isinstance(node, IfExpr):
        children = (node.cond, node.then, node.otherwise)
    else:
        children = ()
    for child in children:
        yield from walk(child)
