"""Expression front-end: lexer, LALR(1) grammar, AST, lowering, and the
limited CSE optimizer (Section III-A of the paper)."""

from . import ast
from .lower import COMPARE_FILTERS, FUNCTION_ALIASES, OP_FILTERS, lower
from .optimize import eliminate_common_subexpressions
from .parser import parse, parser_diagnostics

__all__ = ["ast", "parse", "parser_diagnostics", "lower",
           "eliminate_common_subexpressions",
           "OP_FILTERS", "COMPARE_FILTERS", "FUNCTION_ALIASES"]
