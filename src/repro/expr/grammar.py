"""The expression grammar and its AST-building semantic actions.

Statements are assignments; expressions support arithmetic with the usual
precedence, comparisons, unary minus, parenthesization, filter invocations,
bracket component access, and the introduction's
``if (cond) then (a) else (b)`` conditional form.  The grammar is LALR(1)
with every ambiguity resolved by precedence declarations — the parser
generator records zero unresolved conflicts (asserted in tests).
"""

from __future__ import annotations

from ..errors import ParseError
from ..lexyacc import Grammar, Precedence, Production
from . import ast

__all__ = ["expression_grammar"]


def _program(statements):
    return ast.Program(tuple(statements))


def _stmt_list_one(stmt):
    return [stmt]


def _stmt_list_more(stmts, stmt):
    stmts.append(stmt)
    return stmts


def _assign(name, _eq, expr):
    return ast.Assign(name, expr)


def _binop(op):
    return lambda left, _t, right: ast.BinOp(op, left, right)


def _compare(op):
    return lambda left, _t, right: ast.Compare(op, left, right)


def _uminus(_m, operand):
    return ast.UnaryOp("-", operand)


def _ifexpr(_i, cond, _t, then, _e, otherwise):
    return ast.IfExpr(cond, then, otherwise)


def _call(name, _lp, args, _rp):
    return ast.Call(name, tuple(args))


def _index(base, _lb, number, _rb):
    if float(number) != int(number):
        raise ParseError(
            f"bracket component index must be an integer, got {number}")
    return ast.Index(base, int(number))


def expression_grammar() -> Grammar:
    productions = [
        Production("program", ("stmt_list",), _program),
        Production("stmt_list", ("stmt",), _stmt_list_one),
        Production("stmt_list", ("stmt_list", "stmt"), _stmt_list_more),
        Production("stmt", ("IDENT", "ASSIGN", "expr"), _assign),

        Production("expr", ("expr", "PLUS", "expr"), _binop("+")),
        Production("expr", ("expr", "MINUS", "expr"), _binop("-")),
        Production("expr", ("expr", "TIMES", "expr"), _binop("*")),
        Production("expr", ("expr", "DIVIDE", "expr"), _binop("/")),
        Production("expr", ("expr", "LT", "expr"), _compare("<")),
        Production("expr", ("expr", "GT", "expr"), _compare(">")),
        Production("expr", ("expr", "LE", "expr"), _compare("<=")),
        Production("expr", ("expr", "GE", "expr"), _compare(">=")),
        Production("expr", ("expr", "EQEQ", "expr"), _compare("==")),
        Production("expr", ("expr", "NEQ", "expr"), _compare("!=")),
        Production("expr", ("MINUS", "expr"), _uminus, prec="UMINUS"),
        Production("expr", ("IF", "expr", "THEN", "expr", "ELSE", "expr"),
                   _ifexpr),
        Production("expr", ("atom",)),

        Production("atom", ("NUMBER",), lambda v: ast.Num(float(v))),
        Production("atom", ("IDENT",), lambda n: ast.Ident(n)),
        Production("atom", ("LPAREN", "expr", "RPAREN"),
                   lambda _l, e, _r: e),
        Production("atom", ("IDENT", "LPAREN", "arg_list", "RPAREN"),
                   _call),
        Production("atom", ("atom", "LBRACKET", "NUMBER", "RBRACKET"),
                   _index),

        Production("arg_list", ("expr",), lambda e: [e]),
        Production("arg_list", ("arg_list", "COMMA", "expr"),
                   lambda args, _c, e: (args.append(e), args)[1]),
    ]
    precedence = [
        Precedence("right", ("ELSE",)),
        Precedence("nonassoc", ("LT", "GT", "LE", "GE", "EQEQ", "NEQ")),
        Precedence("left", ("PLUS", "MINUS")),
        Precedence("left", ("TIMES", "DIVIDE")),
        Precedence("right", ("UMINUS",)),
    ]
    return Grammar(productions, "program", precedence)
