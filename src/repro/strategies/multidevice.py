"""The *multi-device* execution strategy — the paper's second future-work
item (Section VI: "strategies that use multiple target devices on a single
node", e.g. Edge's two M2050s).

Splits the problem into one slab per device (with stencil halos), executes
each slab through an inner strategy against that device's own context and
queue, and reassembles.  Devices run concurrently in the modeled timeline,
so the reported simulated time is the *maximum* over devices plus nothing
for the (host-side) reassembly, while event counts aggregate across
devices and the memory requirement per device drops by ~1/n_devices —
exactly the trade the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..clsim.environment import CLEnvironment, TimingSummary
from ..clsim.events import EventCounts
from ..dataflow.network import Network
from ..errors import StrategyError
from ..primitives.base import CallStyle, ResultKind, VECTOR_WIDTH
from .base import ExecutionReport, ExecutionStrategy
from .bindings import BindingInput
from .chunking import assemble, chunk_bindings, discover_mesh, plan_chunks
from .fusion import FusionStrategy

__all__ = ["MultiDeviceStrategy", "DeviceReport"]


@dataclass(frozen=True)
class DeviceReport:
    """Per-device accounting of one multi-device execution."""

    device: str
    counts: EventCounts
    timing: TimingSummary
    mem_high_water: int


class MultiDeviceStrategy(ExecutionStrategy):
    """One slab per device, executed on independent contexts."""

    name = "multi-device"

    def __init__(self,
                 devices: Sequence[Union[str, DeviceType, DeviceSpec]]
                 = ("gpu", "gpu"),
                 inner: ExecutionStrategy | None = None):
        if not devices:
            raise StrategyError("need at least one device")
        self.devices = tuple(devices)
        self.inner = inner if inner is not None else FusionStrategy()

    def _halo_width(self, network: Network) -> int:
        return 1 if any(
            network.registry.get(node.filter).call_style
            is CallStyle.GLOBAL
            for node in network.schedule()
            if node.filter not in ("source", "const")) else 0

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        """Run across ``self.devices``.

        ``env`` names the *primary* device (slab 0) so the strategy drops
        into the standard interface; further devices get their own fresh
        environments.  Per-device details land on the returned report's
        ``device_reports`` — the strategy itself holds no per-run state,
        so one instance is safe to reuse concurrently.
        """
        bindings, n, dtype = self.prepare(network, arrays)
        if env.dry_run:
            raise StrategyError(
                "multi-device runs live; plan one slab per device with "
                "the inner strategy instead")
        host_arrays = {name: binding.data
                       for name, binding in bindings.items()}
        layout = discover_mesh(host_arrays, n)
        chunks = plan_chunks(layout, len(self.devices),
                             self._halo_width(network))

        environments = [env]
        environments.extend(
            CLEnvironment(device, backend=env.context.backend)
            for device in self.devices[1:])

        output_id = network.output_ids()[0]
        components = (VECTOR_WIDTH
                      if network.kind_of(output_id) is ResultKind.VECTOR
                      else 1)
        pieces = []
        sources: dict[str, str] = {}
        device_reports: list[DeviceReport] = []
        for chunk, device_env in zip(chunks, environments):
            sub = chunk_bindings(host_arrays, layout, chunk)
            report = self.inner.execute(network, sub, device_env)
            sources.update(report.generated_sources)
            pieces.append((chunk, report.output))
            device_reports.append(DeviceReport(
                device=device_env.device.name,
                counts=report.counts,
                timing=report.timing,
                mem_high_water=report.mem_high_water))
        output = assemble(pieces, layout, components)

        # Aggregate: counts sum; time is the parallel makespan; the memory
        # constraint is the worst single device.
        counts = EventCounts(
            dev_writes=sum(r.counts.dev_writes
                           for r in device_reports),
            dev_reads=sum(r.counts.dev_reads for r in device_reports),
            kernel_execs=sum(r.counts.kernel_execs
                             for r in device_reports))
        makespan = TimingSummary(
            host_to_device=max(r.timing.host_to_device
                               for r in device_reports),
            kernel_exec=max(r.timing.kernel_exec
                            for r in device_reports),
            device_to_host=max(r.timing.device_to_host
                               for r in device_reports),
            build=max(r.timing.build for r in device_reports),
            wall=sum(r.timing.wall for r in device_reports))
        return ExecutionReport(
            strategy=self.name,
            output=output,
            counts=counts,
            timing=makespan,
            mem_high_water=max(r.mem_high_water
                               for r in device_reports),
            generated_sources=sources,
            device_reports=tuple(device_reports))
