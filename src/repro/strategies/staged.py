"""The *staged* execution strategy (Section III-C2).

Like roundtrip, one kernel per primitive — but intermediate results never
leave the device: each distinct input is uploaded exactly once (just before
its first consumer), intermediates stay in device global memory between
kernel invocations with reference-counted eager release, and only the
final result is read back (Dev-R = 1).

Consequences measured by the paper:

* decompose becomes a device kernel ("staged used more kernel dispatches
  than roundtrip, because it implements the decomposition primitive using
  a kernel to move intermediate results on the OpenCL target device");
* each unique constant is materialized once by a fill kernel (the +1 in
  Q-Crit's 67 kernels);
* holding live intermediates in global memory makes staged the *most*
  memory-constrained strategy, even with reference-counted eager release.

Execution splits into :meth:`StagedStrategy.build_plan` — which walks the
schedule once, generates kernels, and *simulates* the reference-counted
release sequence so each step carries its exact eager-release list — and
:class:`StagedPlan.launch`, which replays uploads/launches/releases.  The
replay reproduces the cold path's allocation order exactly, so the
strategy's signature memory high-water mark is identical warm or cold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..clsim.buffer import Buffer
from ..clsim.environment import CLEnvironment
from ..clsim.kernel import Kernel
from ..clsim.perfmodel import KernelCost
from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE
from ..obs.log import get_logger
from ..primitives.base import ResultKind
from .base import ExecutionReport, ExecutionStrategy
from .bindings import Binding, BindingInput
from .kernelgen import ARRAY, BY_VALUE, CONST_BUF, KernelCache, VECTOR
from .plancache import ExecutablePlan

__all__ = ["StagedStrategy", "StagedPlan"]


@dataclass(frozen=True)
class _FillStep:
    """Materialize one pooled constant with a fill kernel."""

    node_id: str
    value: float
    kernel: Kernel
    cost: KernelCost


@dataclass(frozen=True)
class _NodeStep:
    """One filter launch: lazy source uploads, the kernel, and the eager
    releases that follow it (precomputed from the refcount simulation)."""

    node_id: str
    uploads: tuple[str, ...]        # sources to upload before launching
    arg_ids: tuple[str, ...]        # buffer arguments (node ids)
    by_value: Optional[int]         # decompose's component, passed by value
    out_nbytes: int
    kernel: Kernel
    cost: KernelCost
    reshape: bool                   # view result as (n, VECTOR_WIDTH)
    releases: tuple[str, ...]       # buffers whose last consumer just ran


class StagedPlan(ExecutablePlan):
    """Replayable staged schedule with a precomputed release sequence."""

    def __init__(self, *, fills: tuple[_FillStep, ...],
                 steps: tuple[_NodeStep, ...],
                 const_nbytes: int,
                 upload_output_source: Optional[str],
                 final_releases: tuple[str, ...], **common):
        super().__init__(**common)
        self.fills = fills
        self.steps = steps
        self.const_nbytes = const_nbytes
        self.upload_output_source = upload_output_source
        self.final_releases = final_releases

    def launch(self, bindings: Mapping[str, Binding],
               env: CLEnvironment) -> Optional[np.ndarray]:
        dry = env.dry_run
        buffers: dict[str, Buffer] = {}

        def upload(source_id: str) -> None:
            """Upload a source just before its first consumer runs (exactly
            one Dev-W per distinct input).  Lazy staging keeps the device
            footprint to live values only — the property that lets staged
            execute networks whose fused form cannot fit (Section V-D)."""
            binding = bindings[source_id]
            if dry:
                buffers[source_id] = env.upload_shape(
                    binding.nbytes, source_id)
            else:
                buffers[source_id] = env.upload(binding.data, source_id)

        tracer = env.tracer
        try:
            # -- materialize constants with fill kernels ---------------------
            if self.fills:
                with tracer.span("staged.fills", category="strategy",
                                 fills=len(self.fills)):
                    for fill in self.fills:
                        buf = env.create_buffer(self.const_nbytes,
                                                fill.node_id)
                        env.queue.enqueue_kernel(fill.kernel, [fill.value],
                                                 buf, fill.cost)
                        buffers[fill.node_id] = buf

            # -- execute filters in dependency order --------------------------
            for step in self.steps:
                with tracer.span("staged.node", category="strategy",
                                 node=step.node_id,
                                 kernel=step.kernel.name):
                    for source_id in step.uploads:
                        upload(source_id)
                    kernel_args: list[object] = [buffers[i]
                                                 for i in step.arg_ids]
                    if step.by_value is not None:
                        # The component travels by value, not as a buffer.
                        kernel_args.append(step.by_value)
                    out_buf = env.create_buffer(step.out_nbytes,
                                                step.node_id)
                    env.queue.enqueue_kernel(step.kernel, kernel_args,
                                             out_buf, step.cost)
                    buffers[step.node_id] = out_buf
                    if not dry and step.reshape \
                            and out_buf.data is not None:
                        out_buf.data = out_buf.data.reshape(self.n, -1)
                    for node_id in step.releases:
                        buffers[node_id].release()

            # -- read back only the final result ------------------------------
            with tracer.span("staged.readback", category="strategy"):
                if self.upload_output_source is not None:
                    upload(self.upload_output_source)  # degenerate `a = u`
                result = env.queue.enqueue_read_buffer(
                    buffers[self.output_id])
                for node_id in self.final_releases:
                    buffers[node_id].release()
        finally:
            # Mid-run failures must not leak allocator bytes (release is
            # idempotent, so the normal eager releases are unaffected).
            for buf in buffers.values():
                buf.release()

        if result is None:
            return None
        return self._broadcast(result)


class StagedStrategy(ExecutionStrategy):
    """Kernel-per-primitive with device-resident intermediates."""

    name = "staged"

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self.prepare(network, arrays)
        plan = self.build_plan(network, bindings, n, dtype)
        log = get_logger()
        if log.debug_enabled:
            log.debug("strategy.execute", tracer=env.tracer,
                      strategy=self.name, device=env.device.name,
                      n=n, dtype=str(dtype))
        return plan.run(bindings, env)

    def build_plan(self, network: Network,
                   bindings: Mapping[str, Binding],
                   n: int, dtype: np.dtype) -> StagedPlan:
        """Walk the schedule once: generate kernels, size buffers, and
        simulate the reference counts so every eager release lands on the
        same step it does in live execution."""
        cache = KernelCache(dtype)
        registry = network.registry
        refcounts = network.refcounts()
        output_id = network.output_ids()[0]

        uploaded: set[str] = set()
        released: set[str] = set()

        def consume(node_id: str, releases: list[str]) -> None:
            refcounts[node_id] -= 1
            if refcounts[node_id] == 0:
                releases.append(node_id)
                released.add(node_id)

        fills: list[_FillStep] = []
        for node in network.schedule():
            if node.filter != CONST:
                continue
            fills.append(_FillStep(
                node.id, float(node.param("value")), cache.fill_kernel(),
                KernelCost(global_bytes=dtype.itemsize, flops=0,
                           itemsize=dtype.itemsize)))

        steps: list[_NodeStep] = []
        for node in network.schedule():
            if node.filter in (SOURCE, CONST):
                continue
            primitive = registry.get(node.filter)
            uploads = []
            for input_id in node.inputs:
                if network.spec.node(input_id).filter == SOURCE \
                        and input_id not in uploaded:
                    uploaded.add(input_id)
                    uploads.append(input_id)

            arg_kinds = []
            for input_id in node.inputs:
                input_node = network.spec.node(input_id)
                if input_node.filter == CONST:
                    arg_kinds.append(CONST_BUF)
                elif network.kind_of(input_id) is ResultKind.VECTOR:
                    arg_kinds.append(VECTOR)
                else:
                    arg_kinds.append(ARRAY)
            by_value = (int(node.param("component"))
                        if node.filter == "decompose" else None)
            if by_value is not None:
                arg_kinds.append(BY_VALUE)

            input_nbytes = [
                self._node_nbytes(network, input_id, bindings, n, dtype)
                for input_id in node.inputs]
            out_nbytes = self._node_nbytes(network, node.id, bindings,
                                           n, dtype)
            kernel = cache.primitive_kernel(
                primitive, arg_kinds[:primitive.arity],
                component=node.param("component")
                if node.filter == "decompose" else None)
            cost = KernelCost(
                global_bytes=out_nbytes + sum(input_nbytes),
                flops=primitive.flops_per_element * n,
                register_words=4,
                itemsize=dtype.itemsize,
                elements=n)

            releases: list[str] = []
            for input_id in node.inputs:
                consume(input_id, releases)
            steps.append(_NodeStep(
                node_id=node.id,
                uploads=tuple(uploads),
                arg_ids=node.inputs,
                by_value=by_value,
                out_nbytes=out_nbytes,
                kernel=kernel,
                cost=cost,
                reshape=(network.kind_of(node.id) is ResultKind.VECTOR
                         and not network.uniform(node.id)),
                releases=tuple(releases)))
            uploads = []

        upload_output_source = None
        if network.spec.node(output_id).filter == SOURCE \
                and output_id not in uploaded:
            upload_output_source = output_id
            uploaded.add(output_id)

        final_releases: list[str] = []
        consume(output_id, final_releases)
        # Release anything the output aliasing kept alive (e.g. the output
        # itself when it is also an alias target).
        for node_id in (*(f.node_id for f in fills), *uploaded,
                        *(s.node_id for s in steps)):
            if node_id not in released and refcounts.get(node_id, 0) <= 0:
                final_releases.append(node_id)
                released.add(node_id)

        return StagedPlan(
            fills=tuple(fills),
            steps=tuple(steps),
            const_nbytes=dtype.itemsize,
            upload_output_source=upload_output_source,
            final_releases=tuple(final_releases),
            strategy_name=self.name,
            source_order=tuple(network.live_sources()),
            n=n, dtype=dtype,
            output_id=output_id,
            output_kind=network.kind_of(output_id),
            output_uniform=network.uniform(output_id),
            generated_sources=cache.sources(),
        )
