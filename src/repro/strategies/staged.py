"""The *staged* execution strategy (Section III-C2).

Like roundtrip, one kernel per primitive — but intermediate results never
leave the device: each distinct input is uploaded exactly once (just before
its first consumer), intermediates stay in device global memory between
kernel invocations with reference-counted eager release, and only the
final result is read back (Dev-R = 1).

Consequences measured by the paper:

* decompose becomes a device kernel ("staged used more kernel dispatches
  than roundtrip, because it implements the decomposition primitive using
  a kernel to move intermediate results on the OpenCL target device");
* each unique constant is materialized once by a fill kernel (the +1 in
  Q-Crit's 67 kernels);
* holding live intermediates in global memory makes staged the *most*
  memory-constrained strategy, even with reference-counted eager release.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..clsim.buffer import Buffer
from ..clsim.environment import CLEnvironment
from ..clsim.perfmodel import KernelCost
from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE
from ..primitives.base import CallStyle, ResultKind
from .base import ExecutionReport, ExecutionStrategy
from .bindings import BindingInput
from .kernelgen import ARRAY, BY_VALUE, CONST_BUF, KernelCache, VECTOR

__all__ = ["StagedStrategy"]


class StagedStrategy(ExecutionStrategy):
    """Kernel-per-primitive with device-resident intermediates."""

    name = "staged"

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self._prepare(network, arrays)
        cache = KernelCache(dtype)
        registry = network.registry
        dry = env.dry_run
        refcounts = network.refcounts()

        buffers: dict[str, Buffer] = {}

        def consume(node_id: str) -> None:
            """Reference-counted release: free a buffer after its last
            consumer has executed (the paper's intermediate-reuse design)."""
            refcounts[node_id] -= 1
            if refcounts[node_id] == 0:
                buffers[node_id].release()

        def ensure_source_uploaded(source_id: str) -> None:
            """Upload a source just before its first consumer runs (exactly
            one Dev-W per distinct input).  Lazy staging keeps the device
            footprint to live values only — the property that lets staged
            execute networks whose fused form cannot fit (Section V-D)."""
            if source_id in buffers:
                return
            binding = bindings[source_id]
            if dry:
                buffers[source_id] = env.upload_shape(
                    binding.nbytes, source_id)
            else:
                buffers[source_id] = env.upload(binding.data, source_id)

        # -- materialize constants with fill kernels -------------------------
        for node in network.schedule():
            if node.filter != CONST:
                continue
            buf = env.create_buffer(dtype.itemsize, node.id)
            fill = cache.fill_kernel()
            env.queue.enqueue_kernel(
                fill, [float(node.param("value"))], buf,
                KernelCost(global_bytes=dtype.itemsize, flops=0,
                           itemsize=dtype.itemsize))
            buffers[node.id] = buf

        # -- execute filters in dependency order -------------------------------
        output_id = network.output_ids()[0]
        output: Optional[np.ndarray] = None
        for node in network.schedule():
            if node.filter in (SOURCE, CONST):
                continue
            primitive = registry.get(node.filter)
            for input_id in node.inputs:
                if network.spec.node(input_id).filter == SOURCE:
                    ensure_source_uploaded(input_id)

            arg_kinds = []
            for input_id in node.inputs:
                input_node = network.spec.node(input_id)
                if input_node.filter == CONST:
                    arg_kinds.append(CONST_BUF)
                elif network.kind_of(input_id) is ResultKind.VECTOR:
                    arg_kinds.append(VECTOR)
                else:
                    arg_kinds.append(ARRAY)

            kernel_args: list[object] = [buffers[i] for i in node.inputs]
            if node.filter == "decompose":
                # The component travels by value, not as a buffer.
                kernel_args.append(int(node.param("component")))
                arg_kinds.append(BY_VALUE)

            out_nbytes = self._node_nbytes(network, node.id, bindings,
                                           n, dtype)
            out_buf = env.create_buffer(out_nbytes, node.id)
            traffic = out_nbytes + sum(
                b.nbytes for b in kernel_args if isinstance(b, Buffer))
            kernel = cache.primitive_kernel(
                primitive, arg_kinds[:primitive.arity],
                component=node.param("component")
                if node.filter == "decompose" else None)
            cost = KernelCost(
                global_bytes=traffic,
                flops=primitive.flops_per_element * n,
                register_words=4,
                itemsize=dtype.itemsize,
                elements=n)
            env.queue.enqueue_kernel(kernel, kernel_args, out_buf, cost)
            buffers[node.id] = out_buf
            if not dry and network.kind_of(node.id) is ResultKind.VECTOR \
                    and not network.uniform(node.id) \
                    and out_buf.data is not None:
                out_buf.data = out_buf.data.reshape(n, -1)

            for input_id in node.inputs:
                consume(input_id)

        # -- read back only the final result ------------------------------------
        if network.spec.node(output_id).filter == SOURCE:
            ensure_source_uploaded(output_id)  # degenerate `a = u` network
        result = env.queue.enqueue_read_buffer(buffers[output_id])
        if result is not None:
            output = self._broadcast_output(result, network, output_id, n)
        consume(output_id)
        # Release anything the output aliasing kept alive (e.g. the output
        # itself when it is also an alias target).
        for node_id, buf in buffers.items():
            if not buf.released and refcounts.get(node_id, 0) <= 0:
                buf.release()

        return self._report(env, output, cache.sources())
