"""The *streaming* execution strategy — the paper's first future-work item
(Section VI: "we plan to investigate the runtime performance of our
execution strategies in a streaming context").

Streams the fused kernel over slabs of the problem: each slab (plus a halo
wide enough for the gradient stencil) is uploaded, executed, and read back,
so device global memory is bounded by the slab working set rather than the
problem size.  This is what lets the GPU process Table I grids that plain
fusion cannot fit (see ``benchmarks/bench_ext_streaming.py``).

Chunked execution is *double-buffered*: the modeled device has separate
upload/compute/readback engines (the Tesla M2050's dual DMA layout), so
the host→device transfer of chunk k+1 overlaps the compute of chunk k,
with at most ``pipeline_depth`` chunks resident at once.  Each chunk's
arrays are still computed serially on the host (the capture-twin runs),
then the per-chunk event streams are re-timed onto the overlapped
timeline (:func:`~repro.clsim.pipeline.overlap_events`) and recorded into
the caller's environment: per-category totals (Fig 5) are unchanged,
while the report's ``timing.makespan`` drops below ``total + build`` by
exactly the hidden transfer time — and the overlap is visible as
concurrent category lanes in the Chrome trace.  The modeled memory peak
grows accordingly: up to ``pipeline_depth`` chunk working sets in flight.

Composition, not duplication: each slab runs through the unmodified
:class:`~repro.strategies.fusion.FusionStrategy` against a capture twin
of the shared environment, so the dynamic kernel generator, primitive
library, event accounting, and memory tracking are exercised as-is.
"""

from __future__ import annotations

from typing import Mapping

from ..clsim.environment import CLEnvironment
from ..clsim.pipeline import overlap_events
from ..dataflow.network import Network
from ..primitives.base import CallStyle, ResultKind, VECTOR_WIDTH
from ..errors import StrategyError
from .base import ExecutionReport, ExecutionStrategy
from .bindings import BindingInput
from .chunking import assemble, chunk_bindings, discover_mesh, plan_chunks
from .fusion import FusionStrategy

__all__ = ["StreamingFusionStrategy"]


class StreamingFusionStrategy(ExecutionStrategy):
    """Fused execution over i-axis slabs with stencil halos, pipelined
    ``pipeline_depth`` chunks deep (2 = classic double buffering)."""

    name = "streaming"

    def __init__(self, n_chunks: int = 4, pipeline_depth: int = 2):
        if n_chunks < 1:
            raise StrategyError("n_chunks must be >= 1")
        if pipeline_depth < 1:
            raise StrategyError("pipeline_depth must be >= 1")
        self.n_chunks = n_chunks
        self.pipeline_depth = pipeline_depth
        self._inner = FusionStrategy()

    def _halo_width(self, network: Network) -> int:
        """One cell of halo per stencil primitive in the network (the
        gradient's central difference reads +-1 along each axis)."""
        return 1 if any(
            network.registry.get(node.filter).call_style
            is CallStyle.GLOBAL
            for node in network.schedule()
            if node.filter not in ("source", "const")) else 0

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self.prepare(network, arrays)
        if env.dry_run:
            raise StrategyError(
                "streaming works on live arrays; plan its memory bound by "
                "planning a single chunk with FusionStrategy instead")
        host_arrays = {name: binding.data
                       for name, binding in bindings.items()}
        layout = discover_mesh(host_arrays, n)
        chunks = plan_chunks(layout, self.n_chunks, self._halo_width(network))

        output_id = network.output_ids()[0]
        components = (VECTOR_WIDTH
                      if network.kind_of(output_id) is ResultKind.VECTOR
                      else 1)
        pieces = []
        sources: dict[str, str] = {}
        chunk_streams = []
        chunk_peaks = []
        allocator = env.context.allocator
        for chunk in chunks:
            sub = chunk_bindings(host_arrays, layout, chunk)
            # Capture twin: same context/allocator/pool, private silent
            # event log — the chunk's solo stream, ready for re-timing.
            twin = env.capture()
            allocator.reset_peak()
            report = self._inner.execute(network, sub, twin)
            sources.update(report.generated_sources)
            pieces.append((chunk, report.output))
            chunk_streams.append(twin.queue.log.events)
            chunk_peaks.append(report.mem_high_water)
        for event in overlap_events(chunk_streams,
                                    depth=self.pipeline_depth):
            env.queue.log.record(event)
        # Up to pipeline_depth chunk working sets are device-resident at
        # once on the overlapped timeline — the memory cost of hiding
        # the transfers (Fig 6 accounting stays honest about it).
        window = self.pipeline_depth
        allocator.reset_peak()
        allocator.note_external_peak(max(
            (sum(chunk_peaks[i:i + window])
             for i in range(len(chunk_peaks))), default=0))
        output = assemble(pieces, layout, components)
        return self._report(env, output, sources)
