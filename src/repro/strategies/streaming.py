"""The *streaming* execution strategy — the paper's first future-work item
(Section VI: "we plan to investigate the runtime performance of our
execution strategies in a streaming context").

Streams the fused kernel over slabs of the problem: each slab (plus a halo
wide enough for the gradient stencil) is uploaded, executed, and read back
before the next begins, so device global memory is bounded by the slab
working set rather than the problem size.  This is what lets the GPU
process Table I grids that plain fusion cannot fit (see
``benchmarks/bench_ext_streaming.py``).

Composition, not duplication: each slab runs through the unmodified
:class:`~repro.strategies.fusion.FusionStrategy` against the shared
environment, so the dynamic kernel generator, primitive library, event
accounting, and memory tracking are exercised as-is.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..clsim.environment import CLEnvironment
from ..dataflow.network import Network
from ..primitives.base import CallStyle, ResultKind, VECTOR_WIDTH
from ..errors import StrategyError
from .base import ExecutionReport, ExecutionStrategy
from .bindings import BindingInput
from .chunking import assemble, chunk_bindings, discover_mesh, plan_chunks
from .fusion import FusionStrategy

__all__ = ["StreamingFusionStrategy"]


class StreamingFusionStrategy(ExecutionStrategy):
    """Fused execution over i-axis slabs with stencil halos."""

    name = "streaming"

    def __init__(self, n_chunks: int = 4):
        if n_chunks < 1:
            raise StrategyError("n_chunks must be >= 1")
        self.n_chunks = n_chunks
        self._inner = FusionStrategy()

    def _halo_width(self, network: Network) -> int:
        """One cell of halo per stencil primitive in the network (the
        gradient's central difference reads +-1 along each axis)."""
        return 1 if any(
            network.registry.get(node.filter).call_style
            is CallStyle.GLOBAL
            for node in network.schedule()
            if node.filter not in ("source", "const")) else 0

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self.prepare(network, arrays)
        if env.dry_run:
            raise StrategyError(
                "streaming works on live arrays; plan its memory bound by "
                "planning a single chunk with FusionStrategy instead")
        host_arrays = {name: binding.data
                       for name, binding in bindings.items()}
        layout = discover_mesh(host_arrays, n)
        chunks = plan_chunks(layout, self.n_chunks, self._halo_width(network))

        output_id = network.output_ids()[0]
        components = (VECTOR_WIDTH
                      if network.kind_of(output_id) is ResultKind.VECTOR
                      else 1)
        pieces = []
        sources: dict[str, str] = {}
        for chunk in chunks:
            sub = chunk_bindings(host_arrays, layout, chunk)
            report = self._inner.execute(network, sub, env)
            sources.update(report.generated_sources)
            pieces.append((chunk, report.output))
        output = assemble(pieces, layout, components)
        return self._report(env, output, sources)
