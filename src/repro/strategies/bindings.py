"""Host-array bindings handed to execution strategies.

A strategy needs, for every ``source`` node, either a real NumPy array
(live execution) or just its shape/dtype (dry-run planning at full paper
scale).  :class:`ArraySpec` is the shape-only form; :func:`normalize`
accepts a mix and returns a uniform mapping.

The *problem size* — the element count of every derived intermediate and of
the output — is the largest floating-point source, i.e. the mesh field
(coordinate arrays and ``dims`` are comparatively tiny auxiliaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from ..errors import StrategyError

__all__ = ["ArraySpec", "Binding", "normalize", "problem_size"]


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype description of a host array, without data."""

    shape: tuple[int, ...]
    dtype: np.dtype

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def nbytes(self) -> int:
        n = 1
        for d in self.shape:
            n *= int(d)
        return n * self.dtype.itemsize

    @property
    def size(self) -> int:
        return self.nbytes // self.dtype.itemsize


@dataclass(frozen=True)
class Binding:
    """One normalized source binding."""

    name: str
    spec: ArraySpec
    data: np.ndarray | None  # None when planning

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes


BindingInput = Union[np.ndarray, ArraySpec, Binding]


def normalize(arrays: Mapping[str, BindingInput],
              required: list[str]) -> dict[str, Binding]:
    """Validate that every required source is bound and normalize.

    Idempotent: already-normalized :class:`Binding` values pass through,
    so a prepared execution can be re-prepared (e.g. the engine's uncached
    path re-running a prepared request through ``strategy.execute``).
    """
    out: dict[str, Binding] = {}
    for name in required:
        if name not in arrays:
            raise StrategyError(
                f"expression requires host array {name!r}; "
                f"bound: {sorted(arrays)}")
        value = arrays[name]
        if isinstance(value, Binding):
            out[name] = value
        elif isinstance(value, ArraySpec):
            out[name] = Binding(name, value, None)
        else:
            array = np.asarray(value)
            out[name] = Binding(
                name, ArraySpec(array.shape, array.dtype), array)
    return out


def problem_size(bindings: Mapping[str, Binding]) -> tuple[int, np.dtype]:
    """(n_elements, float dtype) of the problem, from the largest
    floating-point source.

    Every problem-sized field must share one element type — mixing
    float32 and float64 mesh fields is an input error, caught here rather
    than as a cryptic buffer-size mismatch inside a kernel.
    """
    best_n, best_dtype = 0, None
    for binding in bindings.values():
        if binding.spec.dtype.kind != "f":
            continue
        if binding.spec.size > best_n:
            best_n = binding.spec.size
            best_dtype = binding.spec.dtype
    if best_dtype is None:
        raise StrategyError(
            "no floating-point source field bound; cannot size the problem")
    mismatched = sorted(
        binding.name for binding in bindings.values()
        if binding.spec.dtype.kind == "f"
        and binding.spec.size == best_n
        and binding.spec.dtype != best_dtype)
    if mismatched:
        raise StrategyError(
            f"mesh fields must share one float dtype; {mismatched} differ "
            f"from {np.dtype(best_dtype)}")
    return best_n, best_dtype
