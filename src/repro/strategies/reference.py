"""Hand-written reference kernels for the three test expressions.

Section IV-D1: *"we also compared our roundtrip, staged and fusion
execution strategies to reference OpenCL kernels written for each of the
three vortex detection expressions. The reference kernels have the same
input and output global device memory constraints as our fusion strategy.
They were written to directly compute the desired expression and hence are
able to execute the expressions using less memory fetches and floating
point operations than our strategies."*

Each reference here is a hand-written OpenCL kernel string plus a direct
NumPy implementation (from :mod:`repro.analysis.vortex`), executed through
the same environment so its events, memory, and timing are measured
identically.  It is *not* an :class:`ExecutionStrategy` over a network —
it is the custom one-off solution the framework is competing with.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..analysis import vortex
from ..clsim.compiler import PREAMBLE, validate_source
from ..clsim.environment import CLEnvironment
from ..clsim.kernel import Kernel
from ..clsim.perfmodel import KernelCost
from ..errors import StrategyError
from ..primitives.gradient import GRAD3D
from .base import ExecutionReport, ctype_for
from .bindings import ArraySpec, BindingInput, normalize, problem_size

__all__ = ["ReferenceKernel", "REFERENCE_FLOPS"]

# Direct-computation FLOP counts per element (fewer than the composed
# strategies, per the paper).
REFERENCE_FLOPS = {
    "velocity_magnitude": 9,
    "vorticity_magnitude": 3 * GRAD3D.flops_per_element + 12,
    "q_criterion": 3 * GRAD3D.flops_per_element + 40,
}

_VELMAG_CL = PREAMBLE + """
__kernel void ref_velocity_magnitude(
    __global const {T}* u,
    __global const {T}* v,
    __global const {T}* w,
    __global {T}* out)
{{
    const size_t gid = get_global_id(0);
    const {T} uu = u[gid];
    const {T} vv = v[gid];
    const {T} ww = w[gid];
    out[gid] = sqrt(uu*uu + vv*vv + ww*ww);
}}
"""

_VORTMAG_CL = PREAMBLE + "{GRAD}" + """
__kernel void ref_vorticity_magnitude(
    __global const {T}* u,
    __global const {T}* v,
    __global const {T}* w,
    __global const int* dims,
    __global const {T}* x,
    __global const {T}* y,
    __global const {T}* z,
    __global {T}* out)
{{
    const size_t gid = get_global_id(0);
    const {T4} du = dfg_grad3d(u, dims, x, y, z, gid);
    const {T4} dv = dfg_grad3d(v, dims, x, y, z, gid);
    const {T4} dw = dfg_grad3d(w, dims, x, y, z, gid);
    const {T} wx = dw.s1 - dv.s2;
    const {T} wy = du.s2 - dw.s0;
    const {T} wz = dv.s0 - du.s1;
    out[gid] = sqrt(wx*wx + wy*wy + wz*wz);
}}
"""

_QCRIT_CL = PREAMBLE + "{GRAD}" + """
__kernel void ref_q_criterion(
    __global const {T}* u,
    __global const {T}* v,
    __global const {T}* w,
    __global const int* dims,
    __global const {T}* x,
    __global const {T}* y,
    __global const {T}* z,
    __global {T}* out)
{{
    const size_t gid = get_global_id(0);
    const {T4} du = dfg_grad3d(u, dims, x, y, z, gid);
    const {T4} dv = dfg_grad3d(v, dims, x, y, z, gid);
    const {T4} dw = dfg_grad3d(w, dims, x, y, z, gid);
    const {T} s1 = ({T})0.5 * (du.s1 + dv.s0);
    const {T} s2 = ({T})0.5 * (du.s2 + dw.s0);
    const {T} s5 = ({T})0.5 * (dv.s2 + dw.s1);
    const {T} w1 = ({T})0.5 * (du.s1 - dv.s0);
    const {T} w2 = ({T})0.5 * (du.s2 - dw.s0);
    const {T} w5 = ({T})0.5 * (dv.s2 - dw.s1);
    const {T} s_norm = du.s0*du.s0 + dv.s1*dv.s1 + dw.s2*dw.s2
                     + ({T})2 * (s1*s1 + s2*s2 + s5*s5);
    const {T} w_norm = ({T})2 * (w1*w1 + w2*w2 + w5*w5);
    out[gid] = ({T})0.5 * (w_norm - s_norm);
}}
"""


def _velmag_np(u, v, w):
    return vortex.velocity_magnitude_reference(u, v, w)


def _vortmag_np(u, v, w, dims, x, y, z):
    return vortex.vorticity_magnitude_reference(u, v, w, dims, x, y, z)


def _qcrit_np(u, v, w, dims, x, y, z):
    return vortex.q_criterion_reference(u, v, w, dims, x, y, z)


_KERNELS = {
    "velocity_magnitude": (_VELMAG_CL, _velmag_np, ("u", "v", "w")),
    "vorticity_magnitude": (_VORTMAG_CL, _vortmag_np,
                            ("u", "v", "w", "dims", "x", "y", "z")),
    "q_criterion": (_QCRIT_CL, _qcrit_np,
                    ("u", "v", "w", "dims", "x", "y", "z")),
}


class ReferenceKernel:
    """One of the three hand-written comparison kernels."""

    name = "reference"

    def __init__(self, expression: str):
        if expression not in _KERNELS:
            raise StrategyError(
                f"no reference kernel for {expression!r}; "
                f"available: {sorted(_KERNELS)}")
        self.expression = expression

    def execute(self, arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        template, numpy_fn, inputs = _KERNELS[self.expression]
        bindings = normalize(arrays, list(inputs))
        n, dtype = problem_size(bindings)
        ctype = ctype_for(dtype)
        source = template.format(T=ctype, T4=f"{ctype}4",
                                 GRAD=GRAD3D.render_source(ctype))
        validate_source(source)

        buffers = []
        for name in inputs:
            binding = bindings[name]
            if env.dry_run:
                buffers.append(env.upload_shape(binding.nbytes, name))
            else:
                buffers.append(env.upload(binding.data, name))
        out_buf = env.create_buffer(n * dtype.itemsize, "out")

        kernel = Kernel(f"ref_{self.expression}", source,
                        executor=numpy_fn, arg_names=inputs)
        global_bytes = (sum(bindings[name].nbytes for name in inputs)
                        + out_buf.nbytes)
        cost = KernelCost(
            global_bytes=global_bytes,
            flops=REFERENCE_FLOPS[self.expression] * n,
            register_words=16,
            itemsize=dtype.itemsize,
            elements=n)
        env.queue.enqueue_kernel(kernel, buffers, out_buf, cost)
        output = env.queue.enqueue_read_buffer(out_buf)
        for buf in buffers:
            buf.release()
        out_buf.release()
        return ExecutionReport(
            strategy=self.name,
            output=output,
            counts=env.event_counts(),
            timing=env.timing(),
            mem_high_water=env.mem_high_water,
            generated_sources={kernel.name: source},
        )
