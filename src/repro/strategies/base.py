"""Execution-strategy interface and shared machinery.

Section III-C: a strategy controls *"data movement and how the OpenCL
kernels for each of the derived field primitives are composed to compute
the final result"*.  Strategies share the primitive library and the
dataflow network; they differ only in transfers, kernel granularity, and
intermediate placement.  Adding a strategy means subclassing
:class:`ExecutionStrategy` — no primitive changes, exactly the paper's
extension story.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from ..clsim.buffer import AllocationStats
from ..clsim.environment import CLEnvironment, TimingSummary
from ..clsim.events import EventCounts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .multidevice import DeviceReport
    from .plancache import CacheInfo
from ..dataflow.network import Network
from ..dataflow.spec import NodeSpec
from ..errors import StrategyError
from ..primitives.base import Primitive, ResultKind, VECTOR_WIDTH
from .bindings import ArraySpec, Binding, BindingInput, normalize, \
    problem_size

__all__ = ["CodegenInfo", "ExecutionReport", "ExecutionStrategy",
           "ctype_for"]


def ctype_for(dtype: np.dtype) -> str:
    """OpenCL element type for a NumPy float dtype."""
    if np.dtype(dtype) == np.float64:
        return "double"
    if np.dtype(dtype) == np.float32:
        return "float"
    raise StrategyError(f"unsupported field dtype {dtype}")


@dataclass(frozen=True)
class CodegenInfo:
    """How the compiled executor backend handled one execution.

    ``disposition`` is one of ``memory-hit`` (plan served from the
    in-memory cache), ``disk-hit`` (rebuilt from the persistent plan
    cache), ``cold-codegen`` (generated and compiled this run), or
    ``interpreter-fallback`` (codegen failed; the interpreter plan ran
    and was cached).  ``compiled`` says whether the plan that actually
    ran was a compiled sweep.
    """

    backend: str
    disposition: str
    compiled: bool


@dataclass
class ExecutionReport:
    """Everything one execution produced.

    ``output`` is ``None`` for dry-run (planning) executions.  The
    ``counts``/``timing``/``mem_high_water`` triple feeds Table II, Fig 5,
    and Fig 6 respectively; ``generated_sources`` holds the OpenCL C the
    strategy emitted, for inspection and validation.

    ``cache`` and ``alloc`` are filled in by the warm-execution path
    (:class:`~repro.host.engine.DerivedFieldEngine` with its plan cache):
    plan-cache hit/miss/evict counters and allocator/pool statistics.
    Direct strategy executions leave them ``None``.

    ``device_reports`` carries the per-device breakdown of a multi-device
    execution (empty for single-device strategies).  It lives on the
    report — not on the strategy — so one strategy instance can safely be
    reused across runs and threads.
    """

    strategy: str
    output: Optional[np.ndarray]
    counts: EventCounts
    timing: TimingSummary
    mem_high_water: int
    generated_sources: dict[str, str] = field(default_factory=dict)
    cache: "Optional[CacheInfo]" = None
    alloc: Optional[AllocationStats] = None
    device_reports: "tuple[DeviceReport, ...]" = ()
    codegen: Optional[CodegenInfo] = None
    # Correlation id of the trace this execution ran under (None when
    # the engine ran with the null tracer).  Bundles, trace files, and
    # service snapshots cross-reference reports by this id.
    trace_id: Optional[str] = None

    # -- stable JSON round-trip ----------------------------------------------

    def to_json(self) -> dict:
        """A stable, ``json.dumps``-able view of the report.

        Trace files and bench artifacts embed this instead of ad-hoc
        ``__dict__`` dumps.  The output array itself is *not* serialized
        (only its shape/dtype); everything else — counts, timing, memory,
        sources, cache/alloc counters, per-device reports — round-trips
        through :meth:`from_json` unchanged.
        """
        from dataclasses import asdict
        return {
            "strategy": self.strategy,
            "output": (None if self.output is None else
                       {"shape": list(self.output.shape),
                        "dtype": str(self.output.dtype)}),
            "counts": asdict(self.counts),
            "timing": asdict(self.timing),
            "mem_high_water": self.mem_high_water,
            "generated_sources": dict(self.generated_sources),
            "cache": None if self.cache is None else asdict(self.cache),
            "alloc": None if self.alloc is None else asdict(self.alloc),
            "device_reports": [
                {"device": d.device, "counts": asdict(d.counts),
                 "timing": asdict(d.timing),
                 "mem_high_water": d.mem_high_water}
                for d in self.device_reports],
            "codegen": (None if self.codegen is None
                        else asdict(self.codegen)),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExecutionReport":
        """Rebuild a report from :meth:`to_json` output.  ``output`` comes
        back ``None`` — arrays are never serialized."""
        from ..clsim.buffer import AllocationStats as Alloc
        from .multidevice import DeviceReport
        from .plancache import CacheInfo

        def counts(d: dict) -> EventCounts:
            return EventCounts(**d)

        def timing(d: dict) -> TimingSummary:
            return TimingSummary(**d)

        return cls(
            strategy=data["strategy"],
            output=None,
            counts=counts(data["counts"]),
            timing=timing(data["timing"]),
            mem_high_water=data["mem_high_water"],
            generated_sources=dict(data.get("generated_sources", {})),
            cache=(None if data.get("cache") is None
                   else CacheInfo(**data["cache"])),
            alloc=(None if data.get("alloc") is None
                   else Alloc(**data["alloc"])),
            device_reports=tuple(
                DeviceReport(device=d["device"], counts=counts(d["counts"]),
                             timing=timing(d["timing"]),
                             mem_high_water=d["mem_high_water"])
                for d in data.get("device_reports", ())),
            codegen=(None if data.get("codegen") is None
                     else CodegenInfo(**data["codegen"])),
            trace_id=data.get("trace_id"),
        )


class ExecutionStrategy(abc.ABC):
    """Base class: orchestration helpers shared by all strategies."""

    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        """Run ``network`` over the bound host arrays on ``env``'s device."""

    def plan_token(self) -> tuple:
        """This strategy's contribution to the executable-plan cache key.

        Must cover every option that changes the generated plan; strategies
        with knobs (e.g. streaming's chunk count) extend the tuple.
        """
        return (self.name,)

    # -- shared helpers ---------------------------------------------------------

    def prepare(self, network: Network,
                arrays: Mapping[str, BindingInput],
                ) -> tuple[dict[str, Binding], int, np.dtype]:
        """Normalize bindings and compute problem sizing.

        Public: hosts (the engine's plan path, the service scheduler) call
        this to size and key an execution without running it.  The method
        is pure — safe to call concurrently on one strategy instance.
        """
        bindings = normalize(arrays, network.live_sources())
        n, dtype = problem_size(bindings)
        return bindings, n, np.dtype(dtype)

    def _node_components(self, network: Network, node_id: str) -> int:
        return (VECTOR_WIDTH
                if network.kind_of(node_id) is ResultKind.VECTOR else 1)

    def _node_nbytes(self, network: Network, node_id: str,
                     bindings: Mapping[str, Binding],
                     n: int, dtype: np.dtype) -> int:
        """Device-buffer size for a node's value.  Uniform (constant-
        valued) nodes occupy one element and broadcast."""
        node = network.spec.node(node_id)
        if node.filter == "source":
            return bindings[node_id].nbytes
        if node.filter == "const" or network.uniform(node_id):
            return dtype.itemsize * self._node_components(network, node_id)
        return n * dtype.itemsize * self._node_components(network, node_id)

    def _broadcast_output(self, output: Optional[np.ndarray],
                          network: Network, node_id: str,
                          n: int) -> Optional[np.ndarray]:
        """Expand a uniform result to the full problem size on return."""
        if output is None or not network.uniform(node_id):
            return output
        components = self._node_components(network, node_id)
        shape = (n,) if components == 1 else (n, components)
        return np.ascontiguousarray(
            np.broadcast_to(output.reshape(1, -1)[0], shape))

    def _report(self, env: CLEnvironment, output: Optional[np.ndarray],
                sources: dict[str, str]) -> ExecutionReport:
        return ExecutionReport(
            strategy=self.name,
            output=output,
            counts=env.event_counts(),
            timing=env.timing(),
            mem_high_water=env.mem_high_water,
            generated_sources=sources,
        )

    @staticmethod
    def _primitive_args(node: NodeSpec, primitive: Primitive,
                        values: Mapping[str, np.ndarray]) -> list:
        """Assemble NumPy executor arguments for one node: the input arrays
        plus, for decompose, its compile-time component parameter."""
        args = [values[input_id] for input_id in node.inputs]
        if node.filter == "decompose":
            args.append(node.param("component"))
        return args
