"""Dry-run planning: full-paper-scale experiments without the data.

A plan runs a strategy unmodified against a dry-run
:class:`~repro.clsim.environment.CLEnvironment`: buffers are allocated and
tracked (so out-of-memory failures happen exactly where they would on the
real device), every transfer and kernel event is logged with its modeled
duration, but no element data exists.  This is how the 12 Table I sub-grids
— up to 2.6 GB per field — are swept for Fig 5 and Fig 6 on a machine that
could not hold them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..clsim.device import DeviceSpec, DeviceType
from ..clsim.environment import CLEnvironment, TimingSummary
from ..clsim.events import EventCounts
from ..dataflow.network import Network
from ..errors import CLOutOfMemoryError
from .base import ExecutionStrategy
from .bindings import ArraySpec
from .reference import ReferenceKernel

__all__ = ["PlanResult", "plan"]


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one dry-run execution.

    ``failed`` is True when the device ran out of global memory — the gray
    series in the paper's Figs 5 and 6.  ``mem_high_water`` is still
    meaningful on failure: it records the peak before the failing
    allocation (the CPU columns of Fig 6 show what a device would need).
    """

    strategy: str
    device: str
    failed: bool
    mem_high_water: int
    counts: EventCounts
    timing: Optional[TimingSummary]
    error: Optional[str] = None

    @property
    def runtime(self) -> Optional[float]:
        return None if self.failed or self.timing is None \
            else self.timing.total


def plan(strategy: Union[ExecutionStrategy, ReferenceKernel],
         shapes: Mapping[str, ArraySpec],
         device: Union[str, DeviceType, DeviceSpec],
         network: Optional[Network] = None) -> PlanResult:
    """Dry-run ``strategy`` over shape-only bindings on ``device``.

    ``network`` is required for :class:`ExecutionStrategy` instances and
    ignored for :class:`ReferenceKernel` (which binds its own inputs).
    """
    env = CLEnvironment(device, dry_run=True)
    try:
        if isinstance(strategy, ReferenceKernel):
            report = strategy.execute(shapes, env)
        else:
            if network is None:
                raise ValueError("network required for strategy plans")
            report = strategy.execute(network, shapes, env)
    except CLOutOfMemoryError as exc:
        return PlanResult(
            strategy=strategy.name,
            device=env.device.name,
            failed=True,
            mem_high_water=env.mem_high_water,
            counts=env.event_counts(),
            timing=None,
            error=str(exc),
        )
    return PlanResult(
        strategy=strategy.name,
        device=env.device.name,
        failed=False,
        mem_high_water=report.mem_high_water,
        counts=report.counts,
        timing=report.timing,
    )
