"""Warm-path execution: executable plans and the LRU plan cache.

The paper amortizes *parsing* (tables built once, expressions compiled per
time step change) but every ``execute()`` still re-plans stages, regenerates
and revalidates OpenCL C, re-``exec``-compiles NumPy executors, and
re-reserves every device buffer.  For the in-situ workload the paper
targets — the same compiled expression applied to each new time step — all
of that is loop-invariant.  PyOpenCL keys a persistent compiled-kernel
cache by (source, device) for exactly this reason, and Loo.py separates
one-time transformation/codegen from repeated invocation.

An :class:`ExecutablePlan` captures everything execution needs that does
not depend on array *values*: the planned step/stage sequence, generated
(and validated) OpenCL C, compiled :class:`~repro.clsim.kernel.Kernel`
objects with their exec'd Python executors, precomputed per-node byte
sizes and :class:`~repro.clsim.perfmodel.KernelCost` models.  A warm
``run()`` only binds input arrays, launches, and reads back — producing
the *identical* event sequence, allocation order, and bitwise-identical
output of a cold run.

Strategies that support planning implement ``build_plan()`` and route
their own ``execute()`` through it, so cold and warm paths share one code
path by construction.  :class:`PlanCache` (held by
:class:`~repro.host.engine.DerivedFieldEngine`) is an LRU keyed by
:class:`PlanKey` — a content hash of the network structure plus every
execution-relevant parameter — with hit/miss/evict counters surfaced in
:class:`~repro.strategies.base.ExecutionReport`.
"""

from __future__ import annotations

import abc
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Mapping, Optional

import numpy as np

from ..clsim.environment import CLEnvironment
from ..dataflow.network import Network
from ..metrics import get_registry
from ..dataflow.spec import CONST, SOURCE
from ..primitives.base import ResultKind, VECTOR_WIDTH
from .base import ExecutionReport
from .bindings import Binding

__all__ = ["CODEGEN_VERSION", "ExecutablePlan", "PlanKey", "PlanCache",
           "CacheInfo", "network_signature", "plan_key"]

DEFAULT_PLAN_CACHE_SIZE = 32

# Version of the compiled-executor code generator (repro.codegen).  Bump
# whenever generated sweep semantics change: the value is folded into the
# on-disk plan cache's validity token, so persisted entries from an older
# generator self-invalidate instead of being replayed.
CODEGEN_VERSION = 2


def network_signature(network: Network) -> tuple[str, tuple[str, ...]]:
    """Content-hash the network's *structure*: filters, parameters, and
    topology over canonical node indices, with source/alias names erased.

    Returns ``(digest, source_ids)`` where ``source_ids`` are the live
    sources in schedule order — the plan's positional binding order.  Two
    structurally identical expressions (``t = u*v`` vs ``s = p*q``) hash
    equal and can share one executable plan; bindings are rebound
    positionally on a hit.

    The result is memoized on the network instance (a ``Network`` is fully
    derived in ``__init__`` and immutable afterward) — hashing ~30 nodes
    costs a noticeable slice of a warm execute otherwise.
    """
    cached = getattr(network, "_plan_signature", None)
    if cached is not None:
        return cached
    schedule = network.schedule()
    index = {node.id: i for i, node in enumerate(schedule)}
    parts: list[tuple] = []
    for node in schedule:
        if node.filter == SOURCE:
            parts.append((SOURCE, network.kind_of(node.id).name))
        elif node.filter == CONST:
            parts.append((CONST, repr(node.param("value"))))
        else:
            parts.append((node.filter,
                          tuple(index[i] for i in node.inputs),
                          node.params))
    outputs = tuple(index[o] for o in network.output_ids())
    digest = hashlib.sha1(repr((parts, outputs)).encode()).hexdigest()
    sources = tuple(node.id for node in schedule if node.filter == SOURCE)
    network._plan_signature = (digest, sources)
    return network._plan_signature


@dataclass(frozen=True)
class PlanKey:
    """Everything a cached plan's validity depends on.

    ``signature`` covers network structure; ``source_shapes`` covers every
    bound array's shape/dtype (two grids can share an element count but
    differ in coordinate-array sizes); the rest cover the execution
    configuration.  Any change produces a different key — i.e. a miss.
    """

    signature: str
    strategy: tuple
    dtype: np.dtype       # np.dtype objects hash/compare by value
    n: int
    source_shapes: tuple
    device: tuple
    backend: str
    # Primitive-registry content fingerprint: redefining a primitive
    # changes the key, so both the in-memory cache and the on-disk cache
    # (which names its files by this key's hash) miss instead of
    # replaying a plan built against different primitive semantics.
    fingerprint: str = ""

    def for_device(self, device) -> "PlanKey":
        """This key re-targeted at another device — everything but the
        device identity is device-independent, which is how the service
        scheduler asks 'would this request hit on worker X's device?'."""
        return replace(self,
                       device=(device.name, device.global_mem_bytes))


def plan_key(network: Network, strategy, bindings: Mapping[str, Binding],
             n: int, dtype: np.dtype, device, backend: str,
             ) -> tuple["PlanKey", tuple[str, ...]]:
    """Assemble the cache key for one execution; also returns the current
    network's source order (for positional rebinding on a hit)."""
    signature, sources = network_signature(network)
    shapes = tuple((bindings[s].spec.shape, bindings[s].spec.dtype)
                   for s in sources)
    key = PlanKey(
        signature=signature,
        strategy=strategy.plan_token(),
        dtype=np.dtype(dtype),
        n=n,
        source_shapes=shapes,
        device=(device.name, device.global_mem_bytes),
        backend=backend,
        fingerprint=network.registry.fingerprint(),
    )
    return key, sources


@dataclass(frozen=True)
class CacheInfo:
    """Plan-cache counters surfaced on every warm-path ExecutionReport."""

    hit: bool          # did THIS execution reuse a cached plan?
    hits: int          # lifetime totals for the owning cache
    misses: int
    evictions: int
    size: int
    maxsize: int
    invalidations: int = 0   # stale on-disk entries discarded


class PlanCache:
    """Bounded LRU of :class:`ExecutablePlan` keyed by :class:`PlanKey`.

    Thread-safe: one lock serializes lookup/insert/counter updates, so a
    single cache instance can back every worker of a
    :class:`~repro.service.DerivedFieldService`.  Plans themselves are
    immutable-after-build and launch against caller-owned environments, so
    a cached plan may be run by several threads at once.  Two threads
    missing on the same key may both build the plan (last ``put`` wins) —
    a benign duplicate, never a correctness hazard.
    """

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE):
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self._plans: "OrderedDict[PlanKey, ExecutablePlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Registry mirror: process-wide hit/miss/evict counters
        # (cumulative across every cache instance; per-cache exactness
        # stays on the instance counters above, surfaced via CacheInfo).
        registry = get_registry()
        self._m_hits = registry.counter(
            "repro_plancache_hits_total",
            "Executable-plan lookups served from the cache")
        self._m_misses = registry.counter(
            "repro_plancache_misses_total",
            "Executable-plan lookups that required a plan build")
        self._m_evictions = registry.counter(
            "repro_plancache_evictions_total",
            "Cached plans evicted by the LRU bound")
        self._m_invalidations = registry.counter(
            "repro_plancache_invalidations_total",
            "Stale or corrupt persisted plan entries discarded")

    def get(self, key: PlanKey) -> "Optional[ExecutablePlan]":
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return plan

    def put(self, key: PlanKey, plan: "ExecutablePlan") -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    def record_invalidation(self) -> None:
        """Count one discarded stale/corrupt persisted plan entry (the
        disk layer's analogue of an eviction)."""
        with self._lock:
            self.invalidations += 1
            self._m_invalidations.inc()

    def info(self, hit: bool) -> CacheInfo:
        with self._lock:
            return CacheInfo(hit=hit, hits=self.hits, misses=self.misses,
                             evictions=self.evictions,
                             size=len(self._plans), maxsize=self.maxsize,
                             invalidations=self.invalidations)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        """Affinity probe: no counter updates, no LRU refresh."""
        with self._lock:
            return key in self._plans


class ExecutablePlan(abc.ABC):
    """A fully-compiled, value-independent execution recipe.

    Subclasses (one per plannable strategy) capture the strategy-specific
    step sequence at build time; :meth:`launch` replays it against fresh
    bindings.  The plan holds no :class:`~repro.clsim.buffer.Buffer` or
    array data — only sizes, kernels, and costs — so one plan instance can
    run any number of times, on any environment of the same device/backend.
    """

    def __init__(self, strategy_name: str, source_order: tuple[str, ...],
                 n: int, dtype: np.dtype, output_id: str,
                 output_kind: ResultKind, output_uniform: bool,
                 generated_sources: dict[str, str]):
        self.strategy_name = strategy_name
        self.source_order = source_order
        self.n = n
        self.dtype = np.dtype(dtype)
        self.output_id = output_id
        self.output_kind = output_kind
        self.output_uniform = output_uniform
        self.generated_sources = generated_sources

    @abc.abstractmethod
    def launch(self, bindings: Mapping[str, Binding],
               env: CLEnvironment) -> Optional[np.ndarray]:
        """Bind arrays, enqueue the recorded transfers/kernels, and return
        the raw output (None when planning dry)."""

    def run(self, bindings: Mapping[str, Binding],
            env: CLEnvironment) -> ExecutionReport:
        """Execute and assemble the instrumented report."""
        output = self.launch(bindings, env)
        return ExecutionReport(
            strategy=self.strategy_name,
            output=output,
            counts=env.event_counts(),
            timing=env.timing(),
            mem_high_water=env.mem_high_water,
            generated_sources=dict(self.generated_sources),
        )

    def rebind(self, bindings: Mapping[str, Binding],
               current_sources: tuple[str, ...],
               ) -> Mapping[str, Binding]:
        """Remap bindings keyed by another (structurally identical)
        network's source names onto this plan's names, positionally."""
        if current_sources == self.source_order:
            return bindings
        return {mine: bindings[theirs]
                for mine, theirs in zip(self.source_order, current_sources)}

    # -- shared launch helpers ------------------------------------------------

    @property
    def output_components(self) -> int:
        return VECTOR_WIDTH if self.output_kind is ResultKind.VECTOR else 1

    def _broadcast(self, output: Optional[np.ndarray],
                   ) -> Optional[np.ndarray]:
        """Expand a uniform result to the full problem size on return."""
        if output is None or not self.output_uniform:
            return output
        components = self.output_components
        shape = (self.n,) if components == 1 else (self.n, components)
        return np.ascontiguousarray(
            np.broadcast_to(output.reshape(1, -1)[0], shape))
