"""The *fusion* execution strategy (Section III-C3): a dynamic kernel
generator that composes the whole dataflow network into OpenCL kernels
whose intermediates live in registers.

The generator implements every feature the paper lists:

* per-element function calls for simple primitives (``dfg_add(...)``);
* direct access to device global memory for operations with complex memory
  requirements — ``grad3d`` receives global pointers, since a work-item
  needs its neighbours' values;
* source-code level insertion of constants (literals, no buffers — the
  reason fusion needs no constant uploads or fill kernels);
* multi-valued operations held in built-in OpenCL vector types
  (``double4`` locals);
* source-level array decomposition (``val.s0``, ``val.s1``, ...).

For the paper's expressions every gradient reads a *source* field, so the
entire network fuses into exactly one kernel (K-Exe = 1).  As an extension,
the generator also handles gradients of computed values by splitting the
network into fusion *stages* at global-materialization boundaries — a
gradient of ``u*u`` yields two fused kernels with one materialized
intermediate, which OpenCL's lack of device-wide barriers makes
unavoidable.

Fusion is where plan caching pays most: stage planning, OpenCL C
generation, structural validation, and ``exec``-compiling the NumPy
executors all happen in :meth:`FusionStrategy.build_plan`;
:class:`FusionPlan.launch` is just uploads + one enqueue per stage + the
single read-back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..clsim.buffer import Buffer
from ..clsim.compiler import KernelSourceBuilder, validate_source_cached
from ..clsim.environment import CLEnvironment
from ..clsim.kernel import Kernel
from ..clsim.perfmodel import KernelCost
from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE, NodeSpec
from ..errors import StrategyError
from ..obs.log import get_logger
from ..primitives.base import CallStyle, Primitive, ResultKind, VECTOR_WIDTH
from .base import ExecutionReport, ExecutionStrategy, ctype_for
from .bindings import Binding, BindingInput
from .plancache import ExecutablePlan

__all__ = ["FusionStrategy", "FusionPlan", "FusedStage", "plan_stages"]

_RESERVED = {"gid", "out", "np"}


def _param_name(node_id: str, is_source: bool) -> str:
    if is_source:
        return node_id if node_id not in _RESERVED else f"{node_id}_in"
    return f"m_{node_id}"


def _binding_ctype(binding: Binding) -> str:
    kind = binding.spec.dtype.kind
    if kind == "f":
        return ctype_for(binding.spec.dtype)
    if kind == "i":
        return "int" if binding.spec.dtype.itemsize <= 4 else "long"
    raise StrategyError(
        f"cannot map source {binding.name!r} dtype {binding.spec.dtype} "
        "to an OpenCL type")


@dataclass
class FusedStage:
    """One fused kernel: the nodes it computes, what it reads from global
    memory, and what it materializes back to global memory."""

    index: int
    nodes: list[NodeSpec] = field(default_factory=list)
    reads: list[str] = field(default_factory=list)       # node ids
    writes: list[str] = field(default_factory=list)      # node ids


def plan_stages(network: Network) -> tuple[list[FusedStage], set[str]]:
    """Partition the network into fusion stages.

    A GLOBAL-style node (gradient) must launch after any computed input has
    been materialized, so it starts a later stage than the stage producing
    that input.  Returns the stages and the set of node ids that need
    global materialization (cross-stage values plus the network output).
    """
    spec = network.spec
    stage_of: dict[str, int] = {}
    schedule = network.schedule()
    n_stages = 1
    for node in schedule:
        if node.filter in (SOURCE, CONST):
            continue
        primitive = network.registry.get(node.filter)
        stage = 0
        for input_id in node.inputs:
            input_node = spec.node(input_id)
            if input_node.filter in (SOURCE, CONST):
                if (primitive.call_style is CallStyle.GLOBAL
                        and input_node.filter == CONST):
                    raise StrategyError(
                        f"{node.filter} input {input_id!r} is a constant; "
                        "global-access primitives need array inputs")
                continue
            if primitive.call_style is CallStyle.GLOBAL:
                stage = max(stage, stage_of[input_id] + 1)
            else:
                stage = max(stage, stage_of[input_id])
        stage_of[node.id] = stage
        n_stages = max(n_stages, stage + 1)

    output_id = network.output_ids()[0]
    materialize: set[str] = set()
    if spec.node(output_id).filter not in (SOURCE,):
        materialize.add(output_id)
    for node in schedule:
        if node.filter in (SOURCE, CONST):
            continue
        primitive = network.registry.get(node.filter)
        for input_id in node.inputs:
            input_node = spec.node(input_id)
            if input_node.filter in (SOURCE, CONST):
                continue
            if (primitive.call_style is CallStyle.GLOBAL
                    or stage_of[input_id] < stage_of[node.id]):
                materialize.add(input_id)

    stages = [FusedStage(i) for i in range(n_stages)]
    for node in schedule:
        if node.filter in (SOURCE, CONST):
            continue
        stages[stage_of[node.id]].nodes.append(node)

    # Per-stage global reads: sources used, plus materialized values from
    # earlier stages.
    for stage in stages:
        in_stage = {n.id for n in stage.nodes}
        seen: list[str] = []
        for node in stage.nodes:
            for input_id in node.inputs:
                input_node = spec.node(input_id)
                needs_global = (
                    input_node.filter == SOURCE
                    or (input_node.filter != CONST
                        and input_id not in in_stage))
                if needs_global and input_id not in seen:
                    seen.append(input_id)
        stage.reads = seen
        stage.writes = [n.id for n in stage.nodes if n.id in materialize]
    return stages, materialize


@dataclass(frozen=True)
class _StageStep:
    """One compiled fused stage, ready to enqueue."""

    kernel: Kernel
    cost: KernelCost
    reads: tuple[str, ...]                   # argument buffers (node ids)
    writes: tuple[tuple[str, int], ...]      # (node id, nbytes) outputs
    releases: tuple[str, ...]                # dead after this stage


class FusionPlan(ExecutablePlan):
    """Replayable fused execution: compiled stage kernels and sizes."""

    def __init__(self, *, stages: tuple[_StageStep, ...],
                 reshape_output: bool, **common):
        super().__init__(**common)
        self.stages = stages
        self.reshape_output = reshape_output

    def launch(self, bindings: Mapping[str, Binding],
               env: CLEnvironment) -> Optional[np.ndarray]:
        dry = env.dry_run
        tracer = env.tracer
        buffers: dict[str, Buffer] = {}
        try:
            # Upload each input exactly once (Dev-W = number of sources).
            with tracer.span("fusion.upload", category="strategy",
                             sources=len(self.source_order)):
                for source_id in self.source_order:
                    binding = bindings[source_id]
                    if dry:
                        buffers[source_id] = env.upload_shape(
                            binding.nbytes, source_id)
                    else:
                        buffers[source_id] = env.upload(binding.data,
                                                        source_id)

            for step in self.stages:
                with tracer.span("fusion.stage", category="strategy",
                                 kernel=step.kernel.name):
                    out_buffers = []
                    for node_id, nbytes in step.writes:
                        buf = env.create_buffer(nbytes, node_id)
                        buffers[node_id] = buf
                        out_buffers.append(buf)
                    arg_buffers = [buffers[node_id]
                                   for node_id in step.reads]
                    env.queue.enqueue_kernel(step.kernel, arg_buffers,
                                             out_buffers, step.cost)
                    for node_id in step.releases:
                        buffers[node_id].release()

            with tracer.span("fusion.readback", category="strategy"):
                result = env.queue.enqueue_read_buffer(
                    buffers[self.output_id])
        finally:
            # Mid-run failures (OOM on a stage output) must not leak the
            # already-uploaded sources; release is idempotent.
            for buf in buffers.values():
                buf.release()

        if result is None:
            return None
        output = result
        if self.reshape_output:
            output = output.reshape(self.n, -1)
        return self._broadcast(output)


class FusionStrategy(ExecutionStrategy):
    """Single (or minimal) kernel execution with register intermediates."""

    name = "fusion"

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self.prepare(network, arrays)
        plan = self.build_plan(network, bindings, n, dtype)
        log = get_logger()
        if log.debug_enabled:
            log.debug("strategy.execute", tracer=env.tracer,
                      strategy=self.name, device=env.device.name,
                      n=n, dtype=str(dtype))
        return plan.run(bindings, env)

    def build_plan(self, network: Network,
                   bindings: Mapping[str, Binding],
                   n: int, dtype: np.dtype) -> FusionPlan:
        """Plan stages, generate + validate OpenCL C, and exec-compile the
        NumPy executors — all the value-independent work."""
        stages, _materialize = plan_stages(network)
        output_id = network.output_ids()[0]

        # Last stage that reads each materialized value, for eager release.
        last_read: dict[str, int] = {}
        for stage in stages:
            for node_id in stage.reads:
                last_read[node_id] = stage.index

        sources_out: dict[str, str] = {}
        steps: list[_StageStep] = []
        for stage in stages:
            if not stage.nodes:
                continue  # degenerate network (output is a bare source)
            kernel, cost, cl_source = self._generate(
                network, stage, bindings, n, dtype)
            sources_out[kernel.name] = cl_source
            validate_source_cached(cl_source)

            writes = tuple(
                (node_id,
                 self._node_nbytes(network, node_id, bindings, n, dtype))
                for node_id in stage.writes)
            releases = tuple(
                node_id for node_id in stage.reads
                if network.spec.node(node_id).filter != SOURCE
                and last_read.get(node_id, -1) == stage.index
                and node_id != output_id)
            steps.append(_StageStep(kernel=kernel, cost=cost,
                                    reads=tuple(stage.reads),
                                    writes=writes, releases=releases))

        return FusionPlan(
            stages=tuple(steps),
            reshape_output=(network.kind_of(output_id) is ResultKind.VECTOR
                            and not network.uniform(output_id)),
            strategy_name=self.name,
            source_order=tuple(network.live_sources()),
            n=n, dtype=dtype,
            output_id=output_id,
            output_kind=network.kind_of(output_id),
            output_uniform=network.uniform(output_id),
            generated_sources=sources_out,
        )

    # -- code generation -------------------------------------------------------

    def _generate(self, network: Network, stage: FusedStage,
                  bindings: Mapping[str, Binding], n: int,
                  dtype: np.dtype) -> tuple[Kernel, KernelCost, str]:
        """Emit the OpenCL C and the NumPy executor for one fused stage."""
        spec = network.spec
        registry = network.registry
        ctype = ctype_for(dtype)
        vec_ctype = f"{ctype}{VECTOR_WIDTH}"
        builder = KernelSourceBuilder(f"k_fused_s{stage.index}")
        py_lines: list[str] = []
        namespace: dict[str, object] = {"np": np}

        in_stage = {node.id: node for node in stage.nodes}
        param_names: dict[str, str] = {}

        for node_id in stage.reads:
            node = spec.node(node_id)
            is_source = node.filter == SOURCE
            pname = _param_name(node_id, is_source)
            param_names[node_id] = pname
            if is_source:
                builder.add_global_param(_binding_ctype(bindings[node_id]),
                                         pname)
            else:
                kind_ctype = (vec_ctype if network.kind_of(node_id)
                              is ResultKind.VECTOR else ctype)
                builder.add_global_param(kind_ctype, pname)

        def cl_operand(input_id: str) -> str:
            node = spec.node(input_id)
            if node.filter == CONST:
                # source-code level constant insertion
                return f"(({ctype})({node.param('value')!r}))"
            if input_id in in_stage and input_id not in stage.reads:
                return f"v_{input_id}"
            return f"{param_names[input_id]}[gid]"

        def py_operand(input_id: str) -> str:
            node = spec.node(input_id)
            if node.filter == CONST:
                return repr(float(node.param("value")))
            if input_id in in_stage and input_id not in stage.reads:
                return f"v_{input_id}"
            return param_names[input_id]

        flops = 0
        live_words = 0
        peak_words = 0
        remaining_uses = {
            node.id: sum(1 for m in stage.nodes
                         for i in m.inputs if i == node.id)
            for node in stage.nodes}

        for node in stage.nodes:
            primitive = registry.get(node.filter)
            flops += primitive.flops_per_element * n
            is_vector = primitive.result_kind is ResultKind.VECTOR
            local_ctype = vec_ctype if is_vector else ctype

            if primitive.call_style is CallStyle.GLOBAL:
                operands = []
                for input_id in node.inputs:
                    input_node = spec.node(input_id)
                    if input_node.filter == SOURCE \
                            or input_id in stage.reads:
                        operands.append(param_names[input_id])
                    else:  # pragma: no cover - staged out by plan_stages
                        raise StrategyError(
                            f"global primitive {node.filter} input "
                            f"{input_id!r} not materialized")
                for helper_name, helper_src in \
                        primitive.iter_helpers(ctype):
                    builder.add_helper(helper_name, helper_src)
                call = primitive.render_call(*operands, T=ctype)
                py_call = (f"_p_{primitive.name}("
                           + ", ".join(operands) + ")")
                namespace[f"_p_{primitive.name}"] = primitive.numpy_fn
            elif node.filter == "decompose":
                component = node.param("component")
                base = cl_operand(node.inputs[0])
                call = f"({base}).s{component}"
                py_call = f"({py_operand(node.inputs[0])})[:, {component}]"
            else:
                for helper_name, helper_src in \
                        primitive.iter_helpers(ctype):
                    builder.add_helper(helper_name, helper_src)
                call = primitive.render_call(
                    *[cl_operand(i) for i in node.inputs], T=ctype)
                py_call = (f"_p_{primitive.name}("
                           + ", ".join(py_operand(i)
                                       for i in node.inputs) + ")")
                namespace[f"_p_{primitive.name}"] = primitive.numpy_fn

            builder.add_statement(
                f"const {local_ctype} v_{node.id} = {call};")
            py_lines.append(f"v_{node.id} = {py_call}")

            # Register liveness for the spill model.
            live_words += VECTOR_WIDTH if is_vector else 1
            peak_words = max(peak_words, live_words)
            for input_id in set(node.inputs):
                if input_id in remaining_uses:
                    remaining_uses[input_id] -= sum(
                        1 for i in node.inputs if i == input_id)
                    if remaining_uses[input_id] <= 0 \
                            and input_id not in stage.writes:
                        input_kind = network.kind_of(input_id)
                        live_words -= (VECTOR_WIDTH if input_kind
                                       is ResultKind.VECTOR else 1)

        # Stores for materialized values.
        out_exprs = []
        for node_id in stage.writes:
            pname = f"m_{node_id}"
            kind_ctype = (vec_ctype if network.kind_of(node_id)
                          is ResultKind.VECTOR else ctype)
            builder.add_global_param(kind_ctype, pname, const=False)
            builder.add_statement(f"{pname}[gid] = v_{node_id};")
            if network.uniform(node_id):
                out_exprs.append(f"_as_uniform(v_{node_id})")
            elif network.kind_of(node_id) is ResultKind.VECTOR:
                out_exprs.append(f"_as_vec(v_{node_id})")
            else:
                out_exprs.append(f"_as_field(v_{node_id})")
        cl_source = builder.render()

        # Build the NumPy executor by exec-ing generated Python — the same
        # dynamic-generation step, on the simulation side.
        read_params = [param_names[node_id] for node_id in stage.reads]
        py_src_lines = [f"def _fused({', '.join(read_params)}):"]
        py_src_lines.extend(f"    {line}" for line in py_lines)
        returns = ", ".join(out_exprs)
        py_src_lines.append(
            f"    return ({returns},)" if len(out_exprs) == 1
            else f"    return ({returns})")
        py_source = "\n".join(py_src_lines)
        namespace["_as_field"] = _as_field_factory(n, dtype)
        namespace["_as_vec"] = _as_vec
        namespace["_as_uniform"] = _as_uniform_factory(dtype)
        exec(compile(py_source, f"<fused_stage_{stage.index}>", "exec"),
             namespace)
        fused_fn = namespace["_fused"]

        def executor(*args):
            results = fused_fn(*args)
            return results[0] if len(results) == 1 else results

        kernel = Kernel(builder.kernel_name, cl_source, executor=executor,
                        arg_names=tuple(read_params))

        itemsize = dtype.itemsize
        global_bytes = sum(
            self._node_nbytes(network, node_id, bindings, n, dtype)
            for node_id in (*stage.reads, *stage.writes))
        cost = KernelCost(global_bytes=global_bytes, flops=flops,
                          register_words=peak_words, itemsize=itemsize,
                          elements=n)
        return kernel, cost, cl_source


def _as_field_factory(n: int, dtype: np.dtype):
    """Broadcast scalar-expression results to full problem-sized fields
    (a fused expression of constants still fills the output array)."""
    def _as_field(value):
        array = np.asarray(value, dtype=dtype)
        if array.ndim == 0 or array.size == 1:
            return np.full(n, float(array.reshape(-1)[0]), dtype=dtype)
        return np.ascontiguousarray(array)
    return _as_field


def _as_vec(value):
    return np.ascontiguousarray(value)


def _as_uniform_factory(dtype: np.dtype):
    """Uniform (constant-valued) results occupy single-element buffers."""
    def _as_uniform(value):
        return np.asarray(value, dtype=dtype).reshape(-1)
    return _as_uniform
