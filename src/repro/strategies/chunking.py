"""Mesh-aware chunking of host bindings.

Shared machinery for the two future-work strategies the paper names
(Section VI): *streaming* execution and *multiple target devices on a
single node*.  Both need to split a rectilinear problem into slabs along
the slowest-varying (i) axis, with a halo wide enough for stencil
primitives, and to reassemble outputs with the halo stripped.

The mesh layout is discovered from the bindings themselves: an integer
3-vector is the ``dims`` array; 1-D float arrays of length ``dims[k]+1``
are the point coordinates; full-size float arrays are cell fields.  A
pointwise problem (no mesh bound) chunks by flat element ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..errors import StrategyError

__all__ = ["MeshLayout", "Chunk", "discover_mesh", "plan_chunks",
           "chunk_bindings", "assemble"]


@dataclass(frozen=True)
class MeshLayout:
    """How the bound arrays relate to the rectilinear mesh."""

    dims_name: Optional[str]            # the dims source, if any
    coord_names: tuple[str, ...]        # (x, y, z) sources, if any
    field_names: tuple[str, ...]        # full-sized cell fields
    dims: tuple[int, int, int]          # (ni, nj, nk)

    @property
    def has_mesh(self) -> bool:
        return self.dims_name is not None

    @property
    def n_cells(self) -> int:
        ni, nj, nk = self.dims
        return ni * nj * nk


@dataclass(frozen=True)
class Chunk:
    """One slab along the i axis, in cell indices."""

    start: int          # first owned i-layer
    stop: int           # one past the last owned i-layer
    halo_lo: int        # extra layers included below `start`
    halo_hi: int        # extra layers included above `stop`

    @property
    def owned(self) -> int:
        return self.stop - self.start

    @property
    def extent(self) -> tuple[int, int]:
        """The (lo, hi) i-range actually present in the chunk arrays."""
        return self.start - self.halo_lo, self.stop + self.halo_hi


def discover_mesh(bindings: Mapping[str, np.ndarray],
                  n_cells: int) -> MeshLayout:
    """Classify bound arrays into dims / coordinates / fields."""
    dims_name = None
    dims = None
    for name, array in bindings.items():
        array = np.asarray(array)
        if array.dtype.kind == "i" and array.size == 3:
            dims_name = name
            dims = tuple(int(d) for d in array.ravel())
            break
    if dims_name is None:
        # Pointwise problem: treat the flat range as (n, 1, 1).
        fields = tuple(name for name, a in bindings.items()
                       if np.asarray(a).dtype.kind == "f"
                       and np.asarray(a).size == n_cells)
        return MeshLayout(None, (), fields, (n_cells, 1, 1))

    if dims[0] * dims[1] * dims[2] != n_cells:
        raise StrategyError(
            f"dims {dims} do not match problem size {n_cells}")
    coords = []
    fields = []
    for name, array in bindings.items():
        array = np.asarray(array)
        if name == dims_name:
            continue
        if array.dtype.kind == "f" and array.size == n_cells:
            fields.append(name)
        elif array.dtype.kind == "f" and array.ndim == 1:
            coords.append(name)
    if coords and len(coords) != 3:
        raise StrategyError(
            f"expected 3 coordinate arrays with dims; found {coords}")
    # order coordinates by their length matching dims[k] + 1
    ordered: list[str] = []
    remaining = list(coords)
    for k in range(3):
        match = next((c for c in remaining
                      if np.asarray(bindings[c]).size == dims[k] + 1),
                     None)
        if match is None and coords:
            raise StrategyError(
                f"no coordinate array of length {dims[k] + 1} for axis {k}")
        if match is not None:
            ordered.append(match)
            remaining.remove(match)
    return MeshLayout(dims_name, tuple(ordered), tuple(fields), dims)


def plan_chunks(layout: MeshLayout, n_chunks: int,
                halo: int) -> list[Chunk]:
    """Split the i axis into ``n_chunks`` near-equal slabs.

    Halos are clipped at the physical domain boundary, so boundary cells
    keep their one-sided differences — identical to the unchunked result.
    """
    ni = layout.dims[0]
    if n_chunks < 1:
        raise StrategyError("need at least one chunk")
    n_chunks = min(n_chunks, ni)
    bounds = np.linspace(0, ni, n_chunks + 1).astype(int)
    chunks = []
    for k in range(n_chunks):
        start, stop = int(bounds[k]), int(bounds[k + 1])
        if start == stop:
            continue
        chunks.append(Chunk(
            start=start, stop=stop,
            halo_lo=min(halo, start),
            halo_hi=min(halo, ni - stop)))
    return chunks


def chunk_bindings(bindings: Mapping[str, np.ndarray],
                   layout: MeshLayout,
                   chunk: Chunk) -> dict[str, np.ndarray]:
    """Slice every bound array down to one slab (copy-free for fields in
    C order: slabs along i are contiguous)."""
    lo, hi = chunk.extent
    ni, nj, nk = layout.dims
    out: dict[str, np.ndarray] = {}
    for name, array in bindings.items():
        array = np.asarray(array)
        if name in layout.field_names:
            out[name] = array.reshape(ni, nj, nk)[lo:hi].reshape(-1)
        elif name == layout.dims_name:
            out[name] = np.asarray([hi - lo, nj, nk], dtype=array.dtype)
        elif layout.coord_names and name == layout.coord_names[0]:
            out[name] = array[lo:hi + 1]
        else:
            out[name] = array
    return out


def assemble(pieces: list[tuple[Chunk, np.ndarray]],
             layout: MeshLayout, components: int = 1) -> np.ndarray:
    """Concatenate owned slabs (halo rows stripped) into the full field."""
    ni, nj, nk = layout.dims
    plane = nj * nk
    if components == 1:
        out = np.empty(ni * plane, dtype=pieces[0][1].dtype)
        target = out.reshape(ni, plane)
    else:
        out = np.empty((ni * plane, components), dtype=pieces[0][1].dtype)
        target = out.reshape(ni, plane, components)
    for chunk, values in pieces:
        lo, hi = chunk.extent
        local = values.reshape(hi - lo, plane, *(
            (components,) if components > 1 else ()))
        target[chunk.start:chunk.stop] = local[
            chunk.halo_lo:chunk.halo_lo + chunk.owned]
    return out
