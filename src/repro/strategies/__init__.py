"""Execution strategies (Section III-C): roundtrip, staged, fusion, plus
the hand-written reference kernels and the dry-run planner.

All strategies consume the same dataflow network and primitive library;
they differ only in data movement and kernel composition.  New strategies
subclass :class:`~repro.strategies.base.ExecutionStrategy` without touching
any primitive — the paper's extensibility claim.
"""

from .base import CodegenInfo, ExecutionReport, ExecutionStrategy, \
    ctype_for
from .bindings import ArraySpec, Binding, normalize, problem_size
from .chunking import Chunk, MeshLayout, discover_mesh, plan_chunks
from .fusion import FusedStage, FusionPlan, FusionStrategy, plan_stages
from .kernelgen import KernelCache
from .multidevice import DeviceReport, MultiDeviceStrategy
from .plancache import (CacheInfo, ExecutablePlan, PlanCache, PlanKey,
                        network_signature, plan_key)
from .planner import PlanResult, plan
from .reference import ReferenceKernel
from .roundtrip import RoundtripPlan, RoundtripStrategy
from .staged import StagedPlan, StagedStrategy
from .streaming import StreamingFusionStrategy

STRATEGIES = {
    "roundtrip": RoundtripStrategy,
    "staged": StagedStrategy,
    "fusion": FusionStrategy,
    # Extensions implementing the paper's future-work strategies:
    "streaming": StreamingFusionStrategy,
    "multi-device": MultiDeviceStrategy,
}


def get_strategy(name: str) -> ExecutionStrategy:
    """Instantiate a strategy by name ('roundtrip' | 'staged' | 'fusion')."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: "
            f"{sorted(STRATEGIES)}") from None


__all__ = [
    "CodegenInfo", "ExecutionReport", "ExecutionStrategy", "ctype_for",
    "ArraySpec", "Binding", "normalize", "problem_size",
    "Chunk", "MeshLayout", "discover_mesh", "plan_chunks",
    "FusedStage", "FusionPlan", "FusionStrategy", "plan_stages",
    "KernelCache", "DeviceReport", "MultiDeviceStrategy",
    "StreamingFusionStrategy", "CacheInfo", "ExecutablePlan", "PlanCache",
    "PlanKey", "network_signature", "plan_key",
    "PlanResult", "plan", "ReferenceKernel",
    "RoundtripPlan", "RoundtripStrategy", "StagedPlan", "StagedStrategy",
    "STRATEGIES", "get_strategy",
]
