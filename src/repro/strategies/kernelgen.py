"""Single-primitive OpenCL kernel generation.

The *roundtrip* and *staged* strategies launch one kernel per filter
invocation.  This module generates those standalone kernels from primitive
metadata: the shared helper function plus a thin ``__kernel`` wrapper whose
parameter list reflects the actual argument kinds (problem-sized array,
single-element constant buffer, vector-typed array, or by-value scalar).

Generated source is cached per (primitive, argument-kinds, element-type)
signature, mirroring how a real implementation would cache compiled
``cl.Program`` objects.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..clsim.compiler import PREAMBLE
from ..clsim.kernel import Kernel
from ..primitives.base import CallStyle, Primitive, ResultKind, VECTOR_WIDTH
from ..primitives.vector import DECOMPOSE

__all__ = ["ArgKind", "KernelCache", "ARRAY", "CONST_BUF", "VECTOR",
           "BY_VALUE"]

ARRAY = "array"          # problem-sized scalar array
CONST_BUF = "const_buf"  # single-element constant buffer
VECTOR = "vector"        # problem-sized VECTOR_WIDTH-component array
BY_VALUE = "by_value"    # OpenCL by-value scalar argument

ArgKind = str


def _operand_expr(kind: ArgKind, name: str) -> str:
    if kind == ARRAY or kind == VECTOR:
        return f"{name}[gid]"
    if kind == CONST_BUF:
        return f"{name}[0]"
    return name  # by-value


class KernelCache:
    """Builds and memoizes single-primitive kernels for one element type."""

    def __init__(self, dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        self.ctype = "double" if self.dtype == np.float64 else "float"
        self._cache: dict[tuple, Kernel] = {}

    @property
    def vec_ctype(self) -> str:
        return f"{self.ctype}{VECTOR_WIDTH}"

    # -- public builders --------------------------------------------------------

    def primitive_kernel(self, primitive: Primitive,
                         arg_kinds: Sequence[ArgKind],
                         component: int | None = None) -> Kernel:
        """Kernel for one filter invocation.

        ``component`` is decompose's compile-time parameter; it is passed
        by value, matching the staged strategy's use of a kernel for the
        decomposition primitive.
        """
        key = (primitive.name, tuple(arg_kinds), component)
        kernel = self._cache.get(key)
        if kernel is None:
            if primitive.call_style is CallStyle.GLOBAL:
                kernel = self._gradient_kernel(primitive, arg_kinds)
            elif primitive.name == DECOMPOSE.name:
                kernel = self._decompose_kernel()
            else:
                kernel = self._elementwise_kernel(primitive, arg_kinds)
            self._cache[key] = kernel
        return kernel

    def fill_kernel(self) -> Kernel:
        """Materialize a constant into a single-element device buffer (the
        staged strategy's extra kernel in Table II's Q-Crit row)."""
        key = ("__fill__",)
        kernel = self._cache.get(key)
        if kernel is None:
            source = (
                f"{PREAMBLE}"
                f"__kernel void k_fill(const {self.ctype} value,\n"
                f"                     __global {self.ctype}* out)\n"
                "{\n    const size_t gid = get_global_id(0);\n"
                "    out[gid] = value;\n}\n")
            dtype = self.dtype
            kernel = Kernel(
                "k_fill", source,
                executor=lambda value: np.full(1, value, dtype=dtype),
                arg_names=("value",))
            self._cache[key] = kernel
        return kernel

    def sources(self) -> dict[str, str]:
        return {k.name: k.source for k in self._cache.values()}

    # -- private builders ------------------------------------------------------

    def _param_decl(self, kind: ArgKind, name: str) -> str:
        if kind == ARRAY or kind == CONST_BUF:
            return f"__global const {self.ctype}* {name}"
        if kind == VECTOR:
            return f"__global const {self.vec_ctype}* {name}"
        return f"const {self.ctype} {name}"

    def _result_decl(self, primitive: Primitive) -> str:
        out_type = (self.vec_ctype
                    if primitive.result_kind is ResultKind.VECTOR
                    else self.ctype)
        return f"__global {out_type}* out"

    def _kernel_name(self, primitive: Primitive,
                     arg_kinds: Sequence[ArgKind]) -> str:
        tag = "".join(k[0] for k in arg_kinds)
        return f"k_{primitive.name}_{tag}" if tag else f"k_{primitive.name}"

    def _elementwise_kernel(self, primitive: Primitive,
                            arg_kinds: Sequence[ArgKind]) -> Kernel:
        names = [f"a{i}" for i in range(len(arg_kinds))]
        params = [self._param_decl(k, n) for k, n in zip(arg_kinds, names)]
        params.append(self._result_decl(primitive))
        call = primitive.render_call(
            *[_operand_expr(k, n) for k, n in zip(arg_kinds, names)],
            T=self.ctype)
        name = self._kernel_name(primitive, arg_kinds)
        source = (
            f"{PREAMBLE}"
            f"{primitive.render_source(self.ctype)}\n\n"
            f"__kernel void {name}(\n    " + ",\n    ".join(params) + ")\n"
            "{\n    const size_t gid = get_global_id(0);\n"
            f"    out[gid] = {call};\n}}\n")
        return Kernel(name, source, executor=primitive.numpy_fn,
                      arg_names=tuple(names))

    def _gradient_kernel(self, primitive: Primitive,
                         arg_kinds: Sequence[ArgKind]) -> Kernel:
        # Stencil (GLOBAL) primitives follow the mesh-argument convention:
        # (field..., dims, x, y, z).  dims is an int buffer; every array is
        # passed as a plain global pointer indexed internally by the helper
        # (direct global access).
        name = f"k_{primitive.name}"
        n_fields = primitive.arity - 4
        field_names = [f"f{i}" for i in range(n_fields)] \
            if n_fields > 1 else ["f"]
        arg_names = (*field_names, "dims", "x", "y", "z")
        out_ctype = (self.vec_ctype
                     if primitive.result_kind is ResultKind.VECTOR
                     else self.ctype)
        params = [f"__global const {self.ctype}* {fname}"
                  for fname in field_names]
        params.append("__global const int* dims")
        params.extend(f"__global const {self.ctype}* {c}"
                      for c in ("x", "y", "z"))
        params.append(f"__global {out_ctype}* out")
        call = primitive.render_call(*arg_names, T=self.ctype)
        source = (
            f"{PREAMBLE}"
            f"{primitive.render_source(self.ctype)}\n\n"
            f"__kernel void {name}(\n    " + ",\n    ".join(params) + ")\n"
            "{\n    const size_t gid = get_global_id(0);\n"
            f"    out[gid] = {call};\n}}\n")
        return Kernel(name, source, executor=primitive.numpy_fn,
                      arg_names=arg_names)

    def _decompose_kernel(self) -> Kernel:
        source = (
            f"{PREAMBLE}"
            f"{DECOMPOSE.render_source(self.ctype)}\n\n"
            f"__kernel void k_decompose(\n"
            f"    __global const {self.vec_ctype}* v,\n"
            "    const int c,\n"
            f"    __global {self.ctype}* out)\n"
            "{\n    const size_t gid = get_global_id(0);\n"
            "    out[gid] = dfg_decompose(v[gid], c);\n}\n")
        return Kernel("k_decompose", source, executor=DECOMPOSE.numpy_fn,
                      arg_names=("v", "c"))
