"""The *roundtrip* execution strategy (Section III-C1).

One OpenCL kernel per derived-field primitive, and **every** intermediate
result transfers back to host memory after its kernel completes.  Each
kernel argument occurrence is uploaded fresh (``u*u`` uploads ``u`` twice),
which is what yields the paper's Table II write counts (VelMag 11,
VortMag 32, Q-Crit 123).  Decomposition happens on the host — the gradient
result is already in host memory — so staged ends up with *more* kernel
launches than roundtrip for the gradient-based expressions.

The payoff for all this traffic: device global memory only ever holds one
kernel's working set, making roundtrip the least memory-constrained
strategy (it can process data sets the faster strategies cannot fit).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..clsim.environment import CLEnvironment
from ..clsim.perfmodel import KernelCost
from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE
from ..primitives.base import ResultKind
from .base import ExecutionReport, ExecutionStrategy
from .bindings import BindingInput
from .kernelgen import ARRAY, CONST_BUF, KernelCache, VECTOR

__all__ = ["RoundtripStrategy"]


class RoundtripStrategy(ExecutionStrategy):
    """Kernel-per-primitive with host round trips for every intermediate."""

    name = "roundtrip"

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self._prepare(network, arrays)
        cache = KernelCache(dtype)
        registry = network.registry
        dry = env.dry_run

        # Host-side values for every node (None when planning).
        values: dict[str, Optional[np.ndarray]] = {}
        output_id = network.output_ids()[0]
        output: Optional[np.ndarray] = None

        for node in network.schedule():
            if node.filter == SOURCE:
                values[node.id] = bindings[node.id].data
                continue
            if node.filter == CONST:
                values[node.id] = (None if dry else
                                   np.full(1, node.param("value"),
                                           dtype=dtype))
                continue
            if node.filter == "decompose":
                # Host-side component selection: no device events at all.
                component = node.param("component")
                values[node.id] = (None if dry else np.ascontiguousarray(
                    values[node.inputs[0]][:, component]))
                if node.id == output_id:
                    output = values[node.id]
                continue

            primitive = registry.get(node.filter)
            arg_kinds = []
            for input_id in node.inputs:
                input_node = network.spec.node(input_id)
                if input_node.filter == CONST:
                    arg_kinds.append(CONST_BUF)
                elif network.kind_of(input_id) is ResultKind.VECTOR:
                    arg_kinds.append(VECTOR)
                else:
                    arg_kinds.append(ARRAY)

            # Upload one fresh buffer per argument occurrence.
            arg_buffers = []
            traffic = 0
            for input_id in node.inputs:
                nbytes = self._node_nbytes(network, input_id, bindings,
                                           n, dtype)
                traffic += nbytes
                if dry:
                    arg_buffers.append(env.upload_shape(nbytes, input_id))
                else:
                    arg_buffers.append(env.upload(values[input_id],
                                                  input_id))

            out_nbytes = self._node_nbytes(network, node.id, bindings,
                                           n, dtype)
            out_buf = env.create_buffer(out_nbytes, node.id)
            traffic += out_nbytes

            kernel = cache.primitive_kernel(primitive, arg_kinds)
            cost = KernelCost(
                global_bytes=traffic,
                flops=primitive.flops_per_element * n,
                register_words=4,
                itemsize=dtype.itemsize,
                elements=n)
            env.queue.enqueue_kernel(kernel, arg_buffers, out_buf, cost)
            result = env.queue.enqueue_read_buffer(out_buf)
            if result is not None and network.kind_of(
                    node.id) is ResultKind.VECTOR:
                result = result.reshape(n, -1)
            values[node.id] = result
            if node.id == output_id:
                output = result

            for buf in arg_buffers:
                buf.release()
            out_buf.release()

        if output is None and not dry:
            # Degenerate network: the output is a source, constant, or a
            # host-side decompose — already in host memory, no kernels.
            output = values.get(output_id)
        output = self._broadcast_output(output, network, output_id, n)
        return self._report(env, output, cache.sources())
