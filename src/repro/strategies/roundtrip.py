"""The *roundtrip* execution strategy (Section III-C1).

One OpenCL kernel per derived-field primitive, and **every** intermediate
result transfers back to host memory after its kernel completes.  Each
kernel argument occurrence is uploaded fresh (``u*u`` uploads ``u`` twice),
which is what yields the paper's Table II write counts (VelMag 11,
VortMag 32, Q-Crit 123).  Decomposition happens on the host — the gradient
result is already in host memory — so staged ends up with *more* kernel
launches than roundtrip for the gradient-based expressions.

The payoff for all this traffic: device global memory only ever holds one
kernel's working set, making roundtrip the least memory-constrained
strategy (it can process data sets the faster strategies cannot fit).

Execution is split into :meth:`RoundtripStrategy.build_plan` (schedule
walk, kernel generation, byte/cost precomputation — everything that does
not depend on array values) and :class:`RoundtripPlan.launch` (bind,
transfer, launch, read back).  A cold ``execute()`` is build + launch; a
warm execution through the engine's plan cache replays the same launch
against new arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..clsim.environment import CLEnvironment
from ..clsim.kernel import Kernel
from ..clsim.perfmodel import KernelCost
from ..dataflow.network import Network
from ..dataflow.spec import CONST, SOURCE
from ..obs.log import get_logger
from ..primitives.base import ResultKind
from .base import ExecutionReport, ExecutionStrategy
from .bindings import Binding, BindingInput
from .kernelgen import ARRAY, CONST_BUF, KernelCache, VECTOR
from .plancache import ExecutablePlan

__all__ = ["RoundtripStrategy", "RoundtripPlan"]


@dataclass(frozen=True)
class _Step:
    """One scheduled node, fully resolved at plan-build time."""

    op: str                              # "source" | "const" | "decompose"
    node_id: str                         # | "kernel"
    value: float = 0.0                   # const
    source_id: str = ""                  # decompose input
    component: int = 0                   # decompose
    inputs: tuple[str, ...] = ()         # kernel arguments (node ids)
    input_nbytes: tuple[int, ...] = ()   # kernel argument buffer sizes
    out_nbytes: int = 0
    kernel: Optional[Kernel] = None
    cost: Optional[KernelCost] = None
    is_vector: bool = False              # reshape result to (n, width)


class RoundtripPlan(ExecutablePlan):
    """Replayable roundtrip schedule: per-node kernels and buffer sizes."""

    def __init__(self, *, steps: tuple[_Step, ...], **common):
        super().__init__(**common)
        self.steps = steps

    def launch(self, bindings: Mapping[str, Binding],
               env: CLEnvironment) -> Optional[np.ndarray]:
        dry = env.dry_run
        tracer = env.tracer
        # Host-side values for every node (None when planning).
        values: dict[str, Optional[np.ndarray]] = {}
        output: Optional[np.ndarray] = None
        live = []
        try:
            for step in self.steps:
                if step.op == "source":
                    values[step.node_id] = bindings[step.node_id].data
                    continue
                if step.op == "const":
                    values[step.node_id] = (
                        None if dry
                        else np.full(1, step.value, dtype=self.dtype))
                    continue
                if step.op == "decompose":
                    # Host-side component selection: no device events.
                    values[step.node_id] = (
                        None if dry else np.ascontiguousarray(
                            values[step.source_id][:, step.component]))
                    if step.node_id == self.output_id:
                        output = values[step.node_id]
                    continue

                # Upload one fresh buffer per argument occurrence; the
                # span covers the node's full round trip (up, launch,
                # down) — the strategy's defining cost shape.
                with tracer.span("roundtrip.node", category="strategy",
                                 node=step.node_id,
                                 kernel=step.kernel.name):
                    arg_buffers = []
                    for input_id, nbytes in zip(step.inputs,
                                                step.input_nbytes):
                        if dry:
                            buf = env.upload_shape(nbytes, input_id)
                        else:
                            buf = env.upload(values[input_id], input_id)
                        live.append(buf)
                        arg_buffers.append(buf)
                    out_buf = env.create_buffer(step.out_nbytes,
                                                step.node_id)
                    live.append(out_buf)

                    env.queue.enqueue_kernel(step.kernel, arg_buffers,
                                             out_buf, step.cost)
                    result = env.queue.enqueue_read_buffer(out_buf)
                    if result is not None and step.is_vector:
                        result = result.reshape(self.n, -1)
                    values[step.node_id] = result
                    if step.node_id == self.output_id:
                        output = result

                    for buf in arg_buffers:
                        buf.release()
                    out_buf.release()
        finally:
            # A mid-run failure (OOM, validation) must not leak device
            # bytes from the allocator; release is idempotent.
            for buf in live:
                buf.release()

        if output is None and not dry:
            # Degenerate network: the output is a source, constant, or a
            # host-side decompose — already in host memory, no kernels.
            output = values.get(self.output_id)
        return self._broadcast(output)


class RoundtripStrategy(ExecutionStrategy):
    """Kernel-per-primitive with host round trips for every intermediate."""

    name = "roundtrip"

    def execute(self, network: Network,
                arrays: Mapping[str, BindingInput],
                env: CLEnvironment) -> ExecutionReport:
        bindings, n, dtype = self.prepare(network, arrays)
        plan = self.build_plan(network, bindings, n, dtype)
        log = get_logger()
        if log.debug_enabled:
            log.debug("strategy.execute", tracer=env.tracer,
                      strategy=self.name, device=env.device.name,
                      n=n, dtype=str(dtype))
        return plan.run(bindings, env)

    def build_plan(self, network: Network,
                   bindings: Mapping[str, Binding],
                   n: int, dtype: np.dtype) -> RoundtripPlan:
        """Resolve the schedule to value-independent steps: generated
        kernels, argument kinds, buffer sizes, and modeled costs."""
        cache = KernelCache(dtype)
        registry = network.registry
        output_id = network.output_ids()[0]
        steps: list[_Step] = []

        for node in network.schedule():
            if node.filter == SOURCE:
                steps.append(_Step("source", node.id))
                continue
            if node.filter == CONST:
                steps.append(_Step("const", node.id,
                                   value=float(node.param("value"))))
                continue
            if node.filter == "decompose":
                steps.append(_Step(
                    "decompose", node.id, source_id=node.inputs[0],
                    component=int(node.param("component"))))
                continue

            primitive = registry.get(node.filter)
            arg_kinds = []
            for input_id in node.inputs:
                input_node = network.spec.node(input_id)
                if input_node.filter == CONST:
                    arg_kinds.append(CONST_BUF)
                elif network.kind_of(input_id) is ResultKind.VECTOR:
                    arg_kinds.append(VECTOR)
                else:
                    arg_kinds.append(ARRAY)

            input_nbytes = tuple(
                self._node_nbytes(network, input_id, bindings, n, dtype)
                for input_id in node.inputs)
            out_nbytes = self._node_nbytes(network, node.id, bindings,
                                           n, dtype)
            kernel = cache.primitive_kernel(primitive, arg_kinds)
            cost = KernelCost(
                global_bytes=sum(input_nbytes) + out_nbytes,
                flops=primitive.flops_per_element * n,
                register_words=4,
                itemsize=dtype.itemsize,
                elements=n)
            steps.append(_Step(
                "kernel", node.id, inputs=node.inputs,
                input_nbytes=input_nbytes, out_nbytes=out_nbytes,
                kernel=kernel, cost=cost,
                is_vector=network.kind_of(node.id) is ResultKind.VECTOR))

        return RoundtripPlan(
            steps=tuple(steps),
            strategy_name=self.name,
            source_order=tuple(network.live_sources()),
            n=n, dtype=dtype,
            output_id=output_id,
            output_kind=network.kind_of(output_id),
            output_uniform=network.uniform(output_id),
            generated_sources=cache.sources(),
        )
