"""The paper's three vortex-detection application expressions (Fig 3) and
direct NumPy reference implementations.

The expression strings are verbatim Fig 3 (with the figure's obvious
typographical truncations repaired: ``w_3`` completed to
``0.5*(dv[0] - du[1])`` and the final ``q_crit`` line restored, matching
Eq. 2's definitions).  The reference functions compute the same quantities
directly — they play the role of the paper's hand-written "reference OpenCL
kernels" and provide ground truth for validating every execution strategy.
"""

from __future__ import annotations

import numpy as np

from ..primitives.gradient import grad3d_numpy

__all__ = [
    "VELOCITY_MAGNITUDE", "VORTICITY_MAGNITUDE", "Q_CRITERION",
    "EXPRESSIONS", "EXPRESSION_INPUTS",
    "velocity_magnitude_reference", "vorticity_reference",
    "vorticity_magnitude_reference", "velocity_gradients",
    "q_criterion_reference",
]

# Fig 3A
VELOCITY_MAGNITUDE = "v_mag = sqrt(u*u + v*v + w*w)"

# Fig 3B
VORTICITY_MAGNITUDE = """
du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
w_mag = sqrt(w_x*w_x + w_y*w_y + w_z*w_z)
"""

# Fig 3C.  s_norm has nine terms (||S||^2) and w_norm six (||Omega||^2,
# whose diagonal is zero); Q = 0.5 (||Omega||^2 - ||S||^2).
Q_CRITERION = """
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
s_1 = 0.5 * (du[1] + dv[0])
s_2 = 0.5 * (du[2] + dw[0])
s_3 = 0.5 * (dv[0] + du[1])
s_5 = 0.5 * (dv[2] + dw[1])
s_6 = 0.5 * (dw[0] + du[2])
s_7 = 0.5 * (dw[1] + dv[2])
w_1 = 0.5 * (du[1] - dv[0])
w_2 = 0.5 * (du[2] - dw[0])
w_3 = 0.5 * (dv[0] - du[1])
w_5 = 0.5 * (dv[2] - dw[1])
w_6 = 0.5 * (dw[0] - du[2])
w_7 = 0.5 * (dw[1] - dv[2])
s_norm = du[0]*du[0] + s_1*s_1 + s_2*s_2 +
         s_3*s_3 + dv[1]*dv[1] + s_5*s_5 +
         s_6*s_6 + s_7*s_7 + dw[2]*dw[2]
w_norm = w_1*w_1 + w_2*w_2 + w_3*w_3 +
         w_5*w_5 + w_6*w_6 + w_7*w_7
q_crit = 0.5 * (w_norm - s_norm)
"""

EXPRESSIONS = {
    "velocity_magnitude": VELOCITY_MAGNITUDE,
    "vorticity_magnitude": VORTICITY_MAGNITUDE,
    "q_criterion": Q_CRITERION,
}

# Host arrays each expression consumes (Section IV-B: VelMag needs u,v,w;
# the gradient-based expressions additionally need dims and x,y,z).
EXPRESSION_INPUTS = {
    "velocity_magnitude": ("u", "v", "w"),
    "vorticity_magnitude": ("u", "v", "w", "dims", "x", "y", "z"),
    "q_criterion": ("u", "v", "w", "dims", "x", "y", "z"),
}


def velocity_magnitude_reference(u, v, w) -> np.ndarray:
    """|v| = sqrt(u^2 + v^2 + w^2), computed directly."""
    return np.sqrt(u * u + v * v + w * w)


def velocity_gradients(u, v, w, dims, x, y, z):
    """The velocity gradient tensor rows J = (grad u, grad v, grad w),
    each of shape (n, 4)."""
    return (grad3d_numpy(u, dims, x, y, z),
            grad3d_numpy(v, dims, x, y, z),
            grad3d_numpy(w, dims, x, y, z))


def vorticity_reference(u, v, w, dims, x, y, z) -> np.ndarray:
    """omega = curl(v) as an (n, 3) array (Eq. 1)."""
    du, dv, dw = velocity_gradients(u, v, w, dims, x, y, z)
    return np.stack([dw[:, 1] - dv[:, 2],
                     du[:, 2] - dw[:, 0],
                     dv[:, 0] - du[:, 1]], axis=1)


def vorticity_magnitude_reference(u, v, w, dims, x, y, z) -> np.ndarray:
    omega = vorticity_reference(u, v, w, dims, x, y, z)
    return np.sqrt(np.einsum("ij,ij->i", omega, omega))


def q_criterion_reference(u, v, w, dims, x, y, z) -> np.ndarray:
    """Q = 0.5 (||Omega||_F^2 - ||S||_F^2) from Eqs. 2-3."""
    du, dv, dw = velocity_gradients(u, v, w, dims, x, y, z)
    # J[i][j] = d(velocity component i)/d(axis j)
    j = np.stack([du[:, :3], dv[:, :3], dw[:, :3]], axis=1)
    jt = np.swapaxes(j, 1, 2)
    s = 0.5 * (j + jt)
    omega = 0.5 * (j - jt)
    s_norm2 = np.einsum("nij,nij->n", s, s)
    w_norm2 = np.einsum("nij,nij->n", omega, omega)
    return 0.5 * (w_norm2 - s_norm2)
