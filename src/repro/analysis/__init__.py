"""Application expressions and direct reference implementations for the
paper's vortex-detection evaluation (Section IV-A)."""

from .vortex import (EXPRESSION_INPUTS, EXPRESSIONS, Q_CRITERION,
                     VELOCITY_MAGNITUDE, VORTICITY_MAGNITUDE,
                     q_criterion_reference, velocity_gradients,
                     velocity_magnitude_reference, vorticity_magnitude_reference,
                     vorticity_reference)

__all__ = [
    "EXPRESSIONS", "EXPRESSION_INPUTS", "VELOCITY_MAGNITUDE",
    "VORTICITY_MAGNITUDE", "Q_CRITERION",
    "velocity_magnitude_reference", "velocity_gradients",
    "vorticity_reference", "vorticity_magnitude_reference",
    "q_criterion_reference",
]
