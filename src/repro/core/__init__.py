"""Facade over the paper's primary contribution.

The derived-field framework proper spans four subpackages — the expression
front-end (:mod:`repro.expr`), the dataflow network (:mod:`repro.dataflow`),
the primitive library (:mod:`repro.primitives`), and the execution
strategies (:mod:`repro.strategies`) — orchestrated by the host engine
(:mod:`repro.host`).  This module re-exports the one-stop surface so user
code can say ``from repro.core import derive, DerivedFieldEngine``.
"""

from ..dataflow import Network, NetworkSpec
from ..expr import eliminate_common_subexpressions, lower, parse
from ..host.engine import CompiledExpression, DerivedFieldEngine
from ..host.interface import derive, derive_report
from ..primitives import DEFAULT_REGISTRY, Primitive, default_registry
from ..strategies import (FusionStrategy, ReferenceKernel,
                          RoundtripStrategy, StagedStrategy, get_strategy,
                          plan)

__all__ = [
    "parse", "lower", "eliminate_common_subexpressions",
    "Network", "NetworkSpec",
    "CompiledExpression", "DerivedFieldEngine", "derive", "derive_report",
    "Primitive", "DEFAULT_REGISTRY", "default_registry",
    "RoundtripStrategy", "StagedStrategy", "FusionStrategy",
    "ReferenceKernel", "get_strategy", "plan",
]
