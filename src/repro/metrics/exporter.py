"""Live metrics exposition over HTTP, stdlib only.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread and serves two read-only endpoints from a
:class:`~repro.metrics.registry.MetricsRegistry`:

* ``GET /metrics`` — Prometheus text exposition (scrape target);
* ``GET /metrics.json`` — the JSON snapshot (``registry.snapshot()``).

``python -m repro serve --metrics-port N`` runs one of these next to
the derived-field service; ``port=0`` binds an ephemeral port (the
bound port is on :attr:`MetricsServer.port`).  Rendering happens per
request against live registry state — there is no caching and no
write path, so the listener never perturbs the serving threads beyond
the snapshot locks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .prometheus import CONTENT_TYPE, render_prometheus
from .registry import MetricsRegistry, get_registry

__all__ = ["MetricsServer", "write_metrics_json"]


def write_metrics_json(path: str,
                       registry: Optional[MetricsRegistry] = None) -> dict:
    """Dump a registry snapshot to ``path`` (the ``derive --metrics``
    one-shot exposition); returns the snapshot."""
    registry = get_registry() if registry is None else registry
    snapshot = registry.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    return snapshot


class _Handler(BaseHTTPRequestHandler):
    # Installed per-server via the class attribute below.
    registry: MetricsRegistry

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.registry).encode("utf-8")
            content_type = CONTENT_TYPE
        elif path == "/metrics.json":
            body = (json.dumps(self.registry.snapshot(), indent=2) + "\n"
                    ).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path; try /metrics "
                                 "or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr
        pass


class MetricsServer:
    """A background /metrics listener over one registry.

    Use as a context manager or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = get_registry() if registry is None else registry
        handler = type("BoundMetricsHandler", (_Handler,),
                       {"registry": self.registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host = self._server.server_address[0]
        self.port = self._server.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
