"""Live metrics exposition over HTTP, stdlib only.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread and serves read-only endpoints from a
:class:`~repro.metrics.registry.MetricsRegistry`:

* ``GET /metrics`` — Prometheus text exposition (scrape target);
* ``GET /metrics.json`` — the JSON snapshot (``registry.snapshot()``);
* any JSON routes registered via :meth:`MetricsServer.add_json_route`
  (the serving layer mounts ``/healthz``, ``/readyz``, ``/debugz``).

``python -m repro serve --metrics-port N`` runs one of these next to
the derived-field service; ``port=0`` binds an ephemeral port (the
bound port is on :attr:`MetricsServer.port`).  Rendering happens per
request against live registry state — there is no caching and no
write path, so the listener never perturbs the serving threads beyond
the snapshot locks.

HTTP behavior: every response carries a byte-accurate
``Content-Length`` (label values are not restricted to ASCII — bodies
are measured *after* UTF-8 encoding), unknown paths return a 404 with
a JSON body listing the routes that do exist, and ``HEAD`` is
supported on every route (same headers, no body).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from .prometheus import CONTENT_TYPE, render_prometheus
from .registry import MetricsRegistry, get_registry

__all__ = ["MetricsServer", "write_metrics_json"]


def write_metrics_json(path: str,
                       registry: Optional[MetricsRegistry] = None) -> dict:
    """Dump a registry snapshot to ``path`` (the ``derive --metrics``
    one-shot exposition); returns the snapshot."""
    registry = get_registry() if registry is None else registry
    snapshot = registry.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    return snapshot


class _Handler(BaseHTTPRequestHandler):
    # Installed per-server via the class attributes below.
    registry: MetricsRegistry
    routes: "dict[str, Callable[[], tuple[int, str, bytes]]]"

    def _render(self, path: str) -> "tuple[int, str, bytes]":
        """Resolve one request path to (status, content-type, body)."""
        provider = self.routes.get(path)
        if provider is None:
            payload = {"error": "unknown path",
                       "path": path,
                       "routes": sorted(self.routes)}
            return 404, "application/json", _encode_json(payload)
        try:
            return provider()
        except Exception as exc:   # a broken route must not kill the
            payload = {"error": type(exc).__name__,   # listener thread
                       "detail": str(exc), "path": path}
            return 500, "application/json", _encode_json(payload)

    def _respond(self, *, include_body: bool) -> None:
        path = self.path.split("?", 1)[0]
        status, content_type, body = self._render(path)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        # len() after encoding: label values may be non-ASCII, and
        # Content-Length counts bytes, not code points.
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if include_body:
            self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._respond(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._respond(include_body=False)

    def log_message(self, *args) -> None:  # silence per-request stderr
        pass


def _encode_json(payload) -> bytes:
    return (json.dumps(payload, indent=2, default=str) + "\n"
            ).encode("utf-8")


class MetricsServer:
    """A background /metrics listener over one registry.

    Use as a context manager or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = get_registry() if registry is None else registry
        self._routes: "dict[str, Callable]" = {
            "/metrics": self._render_prometheus,
            "/metrics.json": self._render_snapshot,
        }
        handler = type("BoundMetricsHandler", (_Handler,),
                       {"registry": self.registry,
                        "routes": self._routes})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host = self._server.server_address[0]
        self.port = self._server.server_address[1]
        self._thread: Optional[threading.Thread] = None

    # -- routes --------------------------------------------------------------

    def _render_prometheus(self) -> "tuple[int, str, bytes]":
        body = render_prometheus(self.registry).encode("utf-8")
        return 200, CONTENT_TYPE, body

    def _render_snapshot(self) -> "tuple[int, str, bytes]":
        return 200, "application/json", \
            _encode_json(self.registry.snapshot())

    def add_json_route(self, path: str, provider: Callable) -> None:
        """Mount a JSON endpoint at ``path``.  ``provider()`` returns
        either a JSON-serializable payload (served with 200) or a
        ``(status, payload)`` pair — the serving layer's ``/healthz``
        uses the latter to flip to 503."""
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/': {path!r}")

        def render() -> "tuple[int, str, bytes]":
            result = provider()
            if (isinstance(result, tuple) and len(result) == 2
                    and isinstance(result[0], int)):
                status, payload = result
            else:
                status, payload = 200, result
            return status, "application/json", _encode_json(payload)

        self._routes[path] = render

    @property
    def routes(self) -> "tuple[str, ...]":
        return tuple(sorted(self._routes))

    # -- lifecycle -----------------------------------------------------------

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
