"""The unified metrics registry: counters, gauges, histograms.

Every subsystem with an observable surface — the :mod:`repro.clsim`
allocator and buffer pool, the command-queue event layer, the plan
cache, the engine's compile/prepare/execute phases, and the serving
layer — reports into one process-wide :class:`MetricsRegistry`.  The
registry is the single source the two exporters read: Prometheus text
exposition (:mod:`repro.metrics.prometheus`) and the JSON snapshot
(:meth:`MetricsRegistry.snapshot`).

Naming convention (DESIGN.md §9): ``repro_<subsystem>_<name>_<unit>``,
with cumulative counters suffixed ``_total`` and labels for bounded
dimensions only (device name, transfer direction, request outcome,
cache disposition — never per-request values).

Design points:

* **get-or-create registration** — ``registry.counter(name, ...)`` is
  idempotent, so independent subsystems can bind the same family
  without coordinating; re-registering a name with a different type or
  label set is a programming error and raises.
* **bound children** — hot paths call :meth:`Metric.labels` once at
  construction and hold the returned child; a child update is one
  short lock plus an add, with no dict lookup or label hashing on the
  hot path (the warm-execution budget is ≤1% of wall time, gated in
  ``benchmarks/regress.py``).
* **fixed exponential buckets** — histograms share one bucket layout
  per family, chosen at registration; cumulative bucket counts follow
  Prometheus semantics (each bucket counts observations ≤ its bound,
  ``+Inf`` equals the total count).
* **null twin** — :data:`NULL_REGISTRY` satisfies the same API with
  no-op instruments; ``set_registry(NULL_REGISTRY)`` turns the whole
  metric surface off, which is how the overhead benchmark gets its
  baseline.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Optional, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "NULL_REGISTRY", "NullRegistry", "exponential_buckets",
    "get_registry", "set_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    The implicit ``+Inf`` bucket is not included — every histogram adds
    it itself.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"exponential_buckets needs start>0, factor>1, count>=1; "
            f"got ({start}, {factor}, {count})")
    return tuple(start * factor ** i for i in range(count))


# 1 µs .. ~67 s: covers everything from a single gauge update to a full
# paper-scale sweep, in 4x steps (13 finite buckets + the +Inf bucket).
DEFAULT_DURATION_BUCKETS = exponential_buckets(1e-6, 4.0, 13)


class _CounterChild:
    """One labeled series of a counter (or the unlabeled default)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    """One labeled series of a gauge."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        # A plain store is atomic under the GIL; set() is deliberately
        # lock-free (last writer wins) because it sits on the warm
        # buffer-pool path.  inc/dec/set_max read-modify-write and lock.
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below it (high-water
        tracking)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    """One labeled series of a histogram (fixed exponential buckets)."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        bounds = self._bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, n in zip((*self._bounds, math.inf), counts):
            running += n
            out.append((bound, running))
        return out


class Metric:
    """One registered metric family: a name, a type, and its children.

    A family with ``labelnames=()`` has a single anonymous child and
    forwards updates (``inc``/``set``/``observe``/...) directly; a
    labeled family hands out children via :meth:`labels`.
    """

    TYPE = "untyped"
    _FORWARDED: tuple[str, ...] = ()

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad metric label name {label!r}")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            default = self._new_child()
            self._children[()] = default
            for method in self._FORWARDED:
                setattr(self, method, getattr(default, method))

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child for one label-value assignment (created on first
        use, cached forever — label sets must stay bounded)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}; got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[dict, object]]:
        """``(labels_dict, child)`` pairs, insertion-ordered."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child)
                for key, child in items]

    def _default_child(self):
        child = self._children.get(())
        if child is None:
            raise ValueError(
                f"metric {self.name!r} is labeled "
                f"{list(self.labelnames)}; read through .labels(...)")
        return child


class Counter(Metric):
    """Monotonic cumulative count (``_total`` families)."""

    TYPE = "counter"
    _FORWARDED = ("inc",)

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    @property
    def value(self) -> float:
        """The unlabeled series' value (labeled families read through
        their children)."""
        return self._default_child().value


class Gauge(Metric):
    """A value that goes up and down (bytes in use, queue depth)."""

    TYPE = "gauge"
    _FORWARDED = ("set", "inc", "dec", "set_max")

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(Metric):
    """Distribution over fixed exponential buckets."""

    TYPE = "histogram"
    _FORWARDED = ("observe",)

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram buckets: {bounds}")
        if math.inf in bounds:
            bounds = bounds[:-1]        # +Inf is implicit
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def cumulative(self) -> list[tuple[float, int]]:
        return self._default_child().cumulative()


class MetricsRegistry:
    """Thread-safe, get-or-create home of every metric family."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- registration --------------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls \
                        or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.TYPE}{existing.labelnames}; cannot "
                        f"re-register as {cls.TYPE}{tuple(labelnames)}")
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
                  ) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    # -- read paths ----------------------------------------------------------

    def collect(self) -> list[Metric]:
        """Every registered family, name-sorted (exposition order)."""
        with self._lock:
            return [self._metrics[name]
                    for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """A point-in-time, JSON-serializable view of every family.

        Shape (stable, validated by the CI metrics-smoke job)::

            {family_name: {"type": ..., "help": ...,
                           "samples": [{"labels": {...}, ...}, ...]}}

        Counter/gauge samples carry ``"value"``; histogram samples carry
        ``"count"``, ``"sum"``, and cumulative ``"buckets"`` keyed by
        upper bound (``"+Inf"`` last).  Histogram families additionally
        carry ``"bounds"`` — the ordered finite upper bounds — so JSON
        consumers (``repro top``, the SLO tracker) can interpolate
        quantiles without parsing Prometheus text.
        """
        out: dict[str, dict] = {}
        for metric in self.collect():
            samples = []
            for labels, child in metric.samples():
                if metric.TYPE == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {bucket_label(bound): count
                                    for bound, count
                                    in child.cumulative()},
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            family = {"type": metric.TYPE,
                      "help": metric.help,
                      "samples": samples}
            if metric.TYPE == "histogram":
                family["bounds"] = list(metric.buckets)
            out[metric.name] = family
        return out

    def value(self, name: str, **labels: str) -> float:
        """Convenience read of one counter/gauge series (0.0 when the
        family or series does not exist yet)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        key = tuple(str(labels[n]) for n in metric.labelnames
                    if n in labels)
        if set(labels) != set(metric.labelnames):
            raise ValueError(
                f"metric {name!r} takes labels {list(metric.labelnames)}; "
                f"got {sorted(labels)}")
        with metric._lock:
            child = metric._children.get(key)
        return child.value if child is not None else 0.0


def bucket_label(bound: float) -> str:
    """Prometheus ``le`` text for one bucket bound (``+Inf`` aside,
    the shortest exact float repr)."""
    if math.isinf(bound):
        return "+Inf"
    return repr(bound)


# -- the null twin ----------------------------------------------------------

class _NullInstrument:
    """Accepts the full child/metric API and does nothing."""

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """API-compatible no-op registry (the overhead baseline)."""

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = (),
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def value(self, name: str, **labels: str) -> float:
        return 0.0


NULL_REGISTRY = NullRegistry()

# The process-wide default registry.  Subsystems bind their instruments
# from get_registry() at construction time, so tests swap in a fresh
# registry *before* building engines/services and restore it after.
_default_registry: "MetricsRegistry | NullRegistry" = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The registry new instruments bind to (see :func:`set_registry`)."""
    return _default_registry


def set_registry(registry: "MetricsRegistry | NullRegistry",
                 ) -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` as the process default; returns the previous
    one (already-bound instruments keep reporting to it)."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
