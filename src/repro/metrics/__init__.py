"""`repro.metrics`: the unified metrics layer (DESIGN.md §9).

* :class:`MetricsRegistry` / :func:`get_registry` / :func:`set_registry`
  — the process-wide, thread-safe home of every metric family;
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  instrument types (labeled families, fixed exponential buckets);
* :func:`render_prometheus` — text exposition for a Prometheus scrape;
* :class:`MetricsServer` / :func:`write_metrics_json` — the stdlib HTTP
  listener (``serve --metrics-port``) and the one-shot JSON dump
  (``derive --metrics``);
* :data:`NULL_REGISTRY` — the no-op twin (overhead baseline; install
  with ``set_registry`` to switch the metric surface off).
"""

from .exporter import MetricsServer, write_metrics_json
from .prometheus import CONTENT_TYPE, render_prometheus
from .registry import (Counter, Gauge, Histogram, Metric, MetricsRegistry,
                       NULL_REGISTRY, NullRegistry, exponential_buckets,
                       get_registry, set_registry)

__all__ = [
    "CONTENT_TYPE", "Counter", "Gauge", "Histogram", "Metric",
    "MetricsRegistry", "MetricsServer", "NULL_REGISTRY", "NullRegistry",
    "exponential_buckets", "get_registry", "render_prometheus",
    "set_registry", "write_metrics_json",
]
