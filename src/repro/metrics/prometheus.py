"""Prometheus text exposition (format version 0.0.4) of a registry.

One function, :func:`render_prometheus`, turns a
:class:`~repro.metrics.registry.MetricsRegistry` into the plain-text
format a Prometheus server scrapes::

    # HELP repro_clsim_peak_bytes Peak device global memory ...
    # TYPE repro_clsim_peak_bytes gauge
    repro_clsim_peak_bytes{device="GeForce GTX 460"} 1.234e+08

Histograms expand into ``_bucket`` (cumulative, ``le``-labeled, ending
at ``+Inf``), ``_sum``, and ``_count`` series, per the exposition spec.
Label values are escaped (backslash, double quote, newline); HELP text
escapes backslash and newline.  The test suite round-trips this text
back into snapshot values, so the renderer is the contract.
"""

from __future__ import annotations

from .registry import MetricsRegistry, bucket_label

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value != value:                       # NaN never leaves a sample
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: dict, extra: "tuple[str, str] | None" = None,
                ) -> str:
    pairs = [(k, v) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                     for k, v in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full text exposition of ``registry``, families name-sorted."""
    lines: list[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.TYPE}")
        for labels, child in metric.samples():
            if metric.TYPE == "histogram":
                for bound, cumulative in child.cumulative():
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_text(labels, ('le', bucket_label(bound)))}"
                        f" {cumulative}")
                lines.append(f"{metric.name}_sum{_label_text(labels)} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{metric.name}_count{_label_text(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{metric.name}{_label_text(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"
