"""Elementwise math primitives beyond basic arithmetic.

``sqrt`` is required by the paper's expressions; the comparison and
``select`` primitives support the conditional form from the paper's
introduction (``if (norm(grad(b)) > 10) then (c*c) else (-c*c)``), and the
rest round out a calculator-style operator set (abs/min/max/pow/exp/log).
"""

from __future__ import annotations

import numpy as np

from .base import CallStyle, Primitive, ResultKind

__all__ = ["SQRT", "ABS", "MIN", "MAX", "POW", "EXP", "LOG",
           "LT", "GT", "LE", "GE", "EQ", "NE", "SELECT",
           "MATH_PRIMITIVES"]


def _unary(name: str, cl_expr: str, fn, flops: int) -> Primitive:
    return Primitive(
        name=name, arity=1,
        result_kind=ResultKind.SCALAR,
        call_style=CallStyle.ELEMENTWISE,
        flops_per_element=flops,
        cl_name=f"dfg_{name}",
        cl_source=(f"inline {{T}} dfg_{name}(const {{T}} a)\n"
                   f"{{{{ return {cl_expr}; }}}}"),
        cl_call=f"dfg_{name}({{a0}})",
        numpy_fn=fn,
    )


def _binary_fn(name: str, cl_expr: str, fn, flops: int, *,
               commutative: bool = False) -> Primitive:
    return Primitive(
        name=name, arity=2,
        result_kind=ResultKind.SCALAR,
        call_style=CallStyle.ELEMENTWISE,
        flops_per_element=flops,
        cl_name=f"dfg_{name}",
        cl_source=(f"inline {{T}} dfg_{name}(const {{T}} a, const {{T}} b)\n"
                   f"{{{{ return {cl_expr}; }}}}"),
        cl_call=f"dfg_{name}({{a0}}, {{a1}})",
        numpy_fn=fn,
        commutative=commutative,
    )


SQRT = _unary("sqrt", "sqrt(a)", lambda a: np.sqrt(a), flops=4)
ABS = _unary("abs", "fabs(a)", lambda a: np.abs(a), flops=1)
EXP = _unary("exp", "exp(a)", lambda a: np.exp(a), flops=8)
LOG = _unary("log", "log(a)", lambda a: np.log(a), flops=8)

MIN = _binary_fn("min", "fmin(a, b)", lambda a, b: np.minimum(a, b), 1,
                 commutative=True)
MAX = _binary_fn("max", "fmax(a, b)", lambda a, b: np.maximum(a, b), 1,
                 commutative=True)
POW = _binary_fn("pow", "pow(a, b)", lambda a, b: np.power(a, b), 10)

# Comparisons produce 1.0/0.0 masks, the form OpenCL's select() consumes and
# a convention VisIt's expression language shares.
LT = _binary_fn("lt", "(a < b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) < np.asarray(b)).astype(
                    np.result_type(a, b)), 1)
GT = _binary_fn("gt", "(a > b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) > np.asarray(b)).astype(
                    np.result_type(a, b)), 1)
LE = _binary_fn("le", "(a <= b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) <= np.asarray(b)).astype(
                    np.result_type(a, b)), 1)
GE = _binary_fn("ge", "(a >= b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) >= np.asarray(b)).astype(
                    np.result_type(a, b)), 1)
EQ = _binary_fn("eq", "(a == b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) == np.asarray(b)).astype(
                    np.result_type(a, b)), 1, commutative=True)
NE = _binary_fn("ne", "(a != b) ? ({T})1 : ({T})0",
                lambda a, b: (np.asarray(a) != np.asarray(b)).astype(
                    np.result_type(a, b)), 1, commutative=True)

SELECT = Primitive(
    name="select", arity=3,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=1,
    cl_name="dfg_select",
    cl_source=("inline {T} dfg_select(const {T} c, const {T} t, "
               "const {T} f)\n{{ return (c != ({T})0) ? t : f; }}"),
    cl_call="dfg_select({a0}, {a1}, {a2})",
    numpy_fn=lambda c, t, f: np.where(np.asarray(c) != 0, t, f),
)

MATH_PRIMITIVES = (SQRT, ABS, EXP, LOG, MIN, MAX, POW,
                   LT, GT, LE, GE, EQ, NE, SELECT)
