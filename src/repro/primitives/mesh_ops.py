"""Higher-level mesh operators: divergence, curl, and Laplacian.

Extensions to the paper's building-block subset, in the spirit of VisIt's
expression library (whose operator set includes these).  Like ``grad3d``
they are GLOBAL-call-style primitives — a work-item reads its neighbours'
values from global field arrays — and they share the same axis-derivative
OpenCL helper via :data:`~repro.primitives.gradient.AXIS_HELPER_CL`, so a
fused kernel using several mesh operators carries exactly one copy.

With these, the paper's vorticity-magnitude expression collapses to

    w_mag = vmag(curl3d(u, v, w, dims, x, y, z))

which tests (``tests/primitives/test_mesh_ops.py``) verify is numerically
identical to the Fig 3B composition.
"""

from __future__ import annotations

import numpy as np

from .base import CallStyle, Primitive, ResultKind, VECTOR_WIDTH
from .gradient import AXIS_HELPER_CL, cell_centers, grad3d_numpy, \
    _axis_derivative

__all__ = ["DIV3D", "CURL3D", "LAPLACE3D", "MESH_PRIMITIVES",
           "div3d_numpy", "curl3d_numpy", "laplace3d_numpy"]


def _mesh_args(dims, x, y, z):
    ni, nj, nk = (int(d) for d in np.asarray(dims).ravel()[:3])
    return (ni, nj, nk), cell_centers(x), cell_centers(y), cell_centers(z)


def div3d_numpy(u, v, w, dims, x, y, z) -> np.ndarray:
    """div(V) = du/dx + dv/dy + dw/dz for a cell-centered vector field
    given as three component arrays."""
    (ni, nj, nk), xc, yc, zc = _mesh_args(dims, x, y, z)
    shape = (ni, nj, nk)
    return (_axis_derivative(np.asarray(u).reshape(shape), xc, 0)
            + _axis_derivative(np.asarray(v).reshape(shape), yc, 1)
            + _axis_derivative(np.asarray(w).reshape(shape), zc, 2)
            ).ravel()


def curl3d_numpy(u, v, w, dims, x, y, z) -> np.ndarray:
    """curl(V) as an (n, VECTOR_WIDTH) vector field (Eq. 1's omega)."""
    (ni, nj, nk), xc, yc, zc = _mesh_args(dims, x, y, z)
    shape = (ni, nj, nk)
    u3 = np.asarray(u).reshape(shape)
    v3 = np.asarray(v).reshape(shape)
    w3 = np.asarray(w).reshape(shape)
    n = ni * nj * nk
    out = np.zeros((n, VECTOR_WIDTH), dtype=u3.dtype)
    out[:, 0] = (_axis_derivative(w3, yc, 1)
                 - _axis_derivative(v3, zc, 2)).ravel()
    out[:, 1] = (_axis_derivative(u3, zc, 2)
                 - _axis_derivative(w3, xc, 0)).ravel()
    out[:, 2] = (_axis_derivative(v3, xc, 0)
                 - _axis_derivative(u3, yc, 1)).ravel()
    return out


def laplace3d_numpy(f, dims, x, y, z) -> np.ndarray:
    """Laplacian as divergence of the gradient (composed first-order
    operators, matching the OpenCL helper's two-pass definition)."""
    g = grad3d_numpy(f, dims, x, y, z)
    return div3d_numpy(g[:, 0], g[:, 1], g[:, 2], dims, x, y, z)


_COMMON_INDEX_CL = """
inline long dfg_mesh_index(__global const int* dims, const size_t gid,
                           int* i, int* j, int* k)
{{
    const int nj = dims[1];
    const int nk = dims[2];
    *k = (int)(gid % nk);
    *j = (int)((gid / nk) % nj);
    *i = (int)(gid / ((long)nk * nj));
    return (long)gid;
}}
"""

_DIV3D_CL = """
/* Divergence of a cell-centered vector field given by components. */
inline {T} dfg_div3d(__global const {T}* u,
                     __global const {T}* v,
                     __global const {T}* w,
                     __global const int* dims,
                     __global const {T}* x,
                     __global const {T}* y,
                     __global const {T}* z,
                     const size_t gid)
{{
    int i, j, k;
    const long base = dfg_mesh_index(dims, gid, &i, &j, &k);
    const int ni = dims[0];
    const int nj = dims[1];
    const int nk = dims[2];
    return dfg_grad3d_axis(u, x, i, ni, (long)nj * nk, base)
         + dfg_grad3d_axis(v, y, j, nj, (long)nk, base)
         + dfg_grad3d_axis(w, z, k, nk, (long)1, base);
}}
"""

_CURL3D_CL = """
/* Curl of a cell-centered vector field given by components (Eq. 1). */
inline {T4} dfg_curl3d(__global const {T}* u,
                       __global const {T}* v,
                       __global const {T}* w,
                       __global const int* dims,
                       __global const {T}* x,
                       __global const {T}* y,
                       __global const {T}* z,
                       const size_t gid)
{{
    int i, j, k;
    const long base = dfg_mesh_index(dims, gid, &i, &j, &k);
    const int ni = dims[0];
    const int nj = dims[1];
    const int nk = dims[2];
    const long si = (long)nj * nk;
    const long sj = (long)nk;
    {T4} c;
    c.s0 = dfg_grad3d_axis(w, y, j, nj, sj, base)
         - dfg_grad3d_axis(v, z, k, nk, (long)1, base);
    c.s1 = dfg_grad3d_axis(u, z, k, nk, (long)1, base)
         - dfg_grad3d_axis(w, x, i, ni, si, base);
    c.s2 = dfg_grad3d_axis(v, x, i, ni, si, base)
         - dfg_grad3d_axis(u, y, j, nj, sj, base);
    c.s3 = ({T})0;
    return c;
}}
"""

# The Laplacian needs grad values at *neighbour* cells, i.e. a second
# stencil pass; in a single work-item this means re-evaluating the axis
# derivative at offset bases.
_LAPLACE3D_CL = """
/* Laplacian: second central differences about the cell, axis by axis. */
inline {T} dfg_laplace3d_axis(__global const {T}* f,
                              __global const {T}* pts,
                              const int idx, const int n,
                              const long stride, const long base)
{{
    if (n == 1)
        return ({T})0;
    const {T} d_here = dfg_grad3d_axis(f, pts, idx, n, stride, base);
    const {T} d_lo = (idx > 0)
        ? dfg_grad3d_axis(f, pts, idx - 1, n, stride, base - stride)
        : d_here;
    const {T} d_hi = (idx < n - 1)
        ? dfg_grad3d_axis(f, pts, idx + 1, n, stride, base + stride)
        : d_here;
    const {T} c_lo = (idx > 0) ? dfg_cell_center(pts, idx - 1)
                               : dfg_cell_center(pts, idx);
    const {T} c_hi = (idx < n - 1) ? dfg_cell_center(pts, idx + 1)
                                   : dfg_cell_center(pts, idx);
    const {T} span = c_hi - c_lo;
    return (span != ({T})0) ? (d_hi - d_lo) / span : ({T})0;
}}

inline {T} dfg_laplace3d(__global const {T}* f,
                         __global const int* dims,
                         __global const {T}* x,
                         __global const {T}* y,
                         __global const {T}* z,
                         const size_t gid)
{{
    int i, j, k;
    const long base = dfg_mesh_index(dims, gid, &i, &j, &k);
    const int ni = dims[0];
    const int nj = dims[1];
    const int nk = dims[2];
    return dfg_laplace3d_axis(f, x, i, ni, (long)nj * nk, base)
         + dfg_laplace3d_axis(f, y, j, nj, (long)nk, base)
         + dfg_laplace3d_axis(f, z, k, nk, (long)1, base);
}}
"""

_DEPS = (("dfg_grad3d_axis", AXIS_HELPER_CL),
         ("dfg_mesh_index", _COMMON_INDEX_CL))

DIV3D = Primitive(
    name="div3d", arity=7,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.GLOBAL,
    flops_per_element=30,
    cl_name="dfg_div3d",
    cl_source=_DIV3D_CL,
    cl_call="dfg_div3d({a0}, {a1}, {a2}, {a3}, {a4}, {a5}, {a6}, gid)",
    numpy_fn=div3d_numpy,
    cl_deps=_DEPS,
)

CURL3D = Primitive(
    name="curl3d", arity=7,
    result_kind=ResultKind.VECTOR,
    call_style=CallStyle.GLOBAL,
    flops_per_element=60,
    cl_name="dfg_curl3d",
    cl_source=_CURL3D_CL,
    cl_call="dfg_curl3d({a0}, {a1}, {a2}, {a3}, {a4}, {a5}, {a6}, gid)",
    numpy_fn=curl3d_numpy,
    cl_deps=_DEPS,
)

LAPLACE3D = Primitive(
    name="laplace3d", arity=5,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.GLOBAL,
    flops_per_element=90,
    cl_name="dfg_laplace3d",
    cl_source=_LAPLACE3D_CL,
    cl_call="dfg_laplace3d({a0}, {a1}, {a2}, {a3}, {a4}, gid)",
    numpy_fn=laplace3d_numpy,
    cl_deps=_DEPS,
)

MESH_PRIMITIVES = (DIV3D, CURL3D, LAPLACE3D)
