"""Vector-field primitives.

``decompose`` is the paper's bracket-syntax primitive (``du[1]``): it
selects one component of a multi-component field.  The fusion generator
implements it at the source level with OpenCL vector-component selection
(``val.s0``, ``val.s1``, ...), the staged strategy launches a small kernel
for it, and roundtrip performs it on the host — exactly the difference that
makes staged's K-Exe counts exceed roundtrip's in Table II.

The remaining primitives (``vec3``/``dot``/``cross``/``vmag``) extend the
building-block library in the calculator style of VisIt/ParaView.
"""

from __future__ import annotations

import numpy as np

from .base import CallStyle, Primitive, ResultKind, VECTOR_WIDTH

__all__ = ["DECOMPOSE", "VEC3", "DOT", "CROSS", "VMAG", "VECTOR_PRIMITIVES"]


def _decompose_np(vec: np.ndarray, component) -> np.ndarray:
    comp = int(component)
    if not 0 <= comp < VECTOR_WIDTH:
        raise ValueError(f"component {comp} out of range")
    return np.ascontiguousarray(vec[:, comp])


# decompose's component index is compile-time network metadata (a node
# *param*), not a dataflow input: the fusion generator bakes it into the
# source (``val.s1``) and the staged strategy passes it by value.
DECOMPOSE = Primitive(
    name="decompose", arity=1,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.SOURCE,
    flops_per_element=0,
    cl_name="dfg_decompose",
    # Shared helper used by the *staged* strategy's decompose kernel; the
    # fusion generator instead emits ``value.sN`` directly (cl_call below).
    cl_source=("inline {T} dfg_decompose(const {T4} v, const int c)\n"
               "{{ return (c == 0) ? v.s0 : (c == 1) ? v.s1 : "
               "(c == 2) ? v.s2 : v.s3; }}"),
    cl_call="({a0}).s{component}",
    numpy_fn=_decompose_np,
)


def _vec3_np(a, b, c) -> np.ndarray:
    a, b, c = np.broadcast_arrays(np.atleast_1d(a), np.atleast_1d(b),
                                  np.atleast_1d(c))
    dtype = np.result_type(a, b, c)
    out = np.zeros((a.shape[0], VECTOR_WIDTH), dtype=dtype)
    out[:, 0], out[:, 1], out[:, 2] = a, b, c
    return out


VEC3 = Primitive(
    name="vec3", arity=3,
    result_kind=ResultKind.VECTOR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=0,
    cl_name="dfg_vec3",
    cl_source=("inline {T4} dfg_vec3(const {T} a, const {T} b, "
               "const {T} c)\n{{ return ({T4})(a, b, c, ({T})0); }}"),
    cl_call="dfg_vec3({a0}, {a1}, {a2})",
    numpy_fn=_vec3_np,
)

DOT = Primitive(
    name="dot", arity=2,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=7,
    cl_name="dfg_dot",
    cl_source=("inline {T} dfg_dot(const {T4} a, const {T4} b)\n"
               "{{ return a.s0*b.s0 + a.s1*b.s1 + a.s2*b.s2; }}"),
    cl_call="dfg_dot({a0}, {a1})",
    numpy_fn=lambda a, b: np.einsum(
        "ij,ij->i", *(x[:, :3] for x in np.broadcast_arrays(a, b))),
    commutative=True,
)


def _cross_np(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a, b = np.broadcast_arrays(a, b)
    out = np.zeros_like(a)
    out[:, :3] = np.cross(a[:, :3], b[:, :3])
    return out


CROSS = Primitive(
    name="cross", arity=2,
    result_kind=ResultKind.VECTOR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=9,
    cl_name="dfg_cross",
    cl_source=(
        "inline {T4} dfg_cross(const {T4} a, const {T4} b)\n"
        "{{ return ({T4})(a.s1*b.s2 - a.s2*b.s1,\n"
        "               a.s2*b.s0 - a.s0*b.s2,\n"
        "               a.s0*b.s1 - a.s1*b.s0, ({T})0); }}"),
    cl_call="dfg_cross({a0}, {a1})",
    numpy_fn=_cross_np,
)

VMAG = Primitive(
    name="vmag", arity=1,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=11,
    cl_name="dfg_vmag",
    cl_source=("inline {T} dfg_vmag(const {T4} a)\n"
               "{{ return sqrt(a.s0*a.s0 + a.s1*a.s1 + a.s2*a.s2); }}"),
    cl_call="dfg_vmag({a0})",
    numpy_fn=lambda a: np.sqrt(np.einsum("ij,ij->i", a[:, :3], a[:, :3])),
)

VECTOR_PRIMITIVES = (DECOMPOSE, VEC3, DOT, CROSS, VMAG)
