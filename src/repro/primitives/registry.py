"""The default primitive registry shared across the framework."""

from __future__ import annotations

from .arithmetic import ARITHMETIC_PRIMITIVES
from .base import PrimitiveRegistry
from .gradient import GRAD3D
from .math_ops import MATH_PRIMITIVES
from .mesh_ops import MESH_PRIMITIVES
from .vector import VECTOR_PRIMITIVES

__all__ = ["default_registry", "DEFAULT_REGISTRY"]


def default_registry() -> PrimitiveRegistry:
    """Build a fresh registry with every built-in primitive."""
    registry = PrimitiveRegistry()
    for primitive in (*ARITHMETIC_PRIMITIVES, *MATH_PRIMITIVES,
                      *VECTOR_PRIMITIVES, GRAD3D, *MESH_PRIMITIVES):
        registry.register(primitive)
    return registry


# Module-level singleton used by default throughout the framework.  Tests
# that register custom primitives should build their own via
# :func:`default_registry`.
DEFAULT_REGISTRY = default_registry()
