"""The 3D rectilinear-mesh gradient primitive (``grad3d``).

This is the paper's heavyweight building block: *"the 3D rectilinear mesh
field gradient requires over 50 lines of OpenCL source code"*, and it is the
reason the fusion generator supports direct global-memory access — a
work-item needs its neighbours' values, so the input field must live in a
global array even inside a fused kernel.

Semantics: the field is cell-centered on a rectilinear mesh whose point
coordinates are the 1-D arrays ``x``/``y``/``z`` (lengths ``ni+1``/
``nj+1``/``nk+1`` for ``dims = (ni, nj, nk)`` cells).  Derivatives are
taken with respect to cell-center coordinates, central differences in the
interior and first-order one-sided differences on the boundary — matching
the emitted OpenCL code exactly.  Cells are stored C-order (k fastest).

The result is a 3-component vector field stored in ``VECTOR_WIDTH`` lanes
(an OpenCL ``double4``), whose padding is visible in the paper's memory
study.
"""

from __future__ import annotations

import numpy as np

from ..errors import PrimitiveError
from .base import CallStyle, Primitive, ResultKind, VECTOR_WIDTH

__all__ = ["GRAD3D", "grad3d_numpy", "cell_centers",
           "AXIS_HELPER_CL"]


def cell_centers(points: np.ndarray) -> np.ndarray:
    """Cell-center coordinates from point coordinates along one axis."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 1 or points.size < 2:
        raise PrimitiveError("coordinate array must be 1-D with >= 2 points")
    return 0.5 * (points[:-1] + points[1:])


def _axis_derivative(f: np.ndarray, centers: np.ndarray,
                     axis: int) -> np.ndarray:
    """Central differences in the interior, one-sided at the boundary,
    with respect to non-uniform cell-center coordinates.

    Each difference is computed straight into a view of the output
    (subtract, then divide in place) instead of through full-size
    temporaries — the same operations in the same order, so results stay
    bitwise identical, but with two array passes per region instead of
    three and no intermediate allocations.
    """
    n = f.shape[axis]
    out = np.empty_like(f)

    def ix(sl):
        index = [slice(None)] * f.ndim
        index[axis] = sl
        return tuple(index)

    def shape_c(sl):
        shape = [1] * f.ndim
        shape[axis] = -1
        return centers[sl].reshape(shape)

    def diff_into(target, hi, lo, c_hi, c_lo):
        np.subtract(f[ix(hi)], f[ix(lo)], out=target)
        np.divide(target, shape_c(c_hi) - shape_c(c_lo), out=target)

    if n == 1:
        out[...] = 0.0
        return out
    # interior: (f[i+1] - f[i-1]) / (c[i+1] - c[i-1])
    if n > 2:
        diff_into(out[ix(slice(1, -1))], slice(2, None), slice(None, -2),
                  slice(2, None), slice(None, -2))
    # boundaries: first-order one-sided
    diff_into(out[ix(slice(0, 1))], slice(1, 2), slice(0, 1),
              slice(1, 2), slice(0, 1))
    diff_into(out[ix(slice(n - 1, n))], slice(n - 1, n), slice(n - 2, n - 1),
              slice(n - 1, n), slice(n - 2, n - 1))
    return out


def grad3d_numpy(field: np.ndarray, dims, x: np.ndarray, y: np.ndarray,
                 z: np.ndarray) -> np.ndarray:
    """Vectorized gradient of a flat cell-centered field.

    Returns shape ``(n_cells, VECTOR_WIDTH)`` with components
    (d/dx, d/dy, d/dz, 0).
    """
    ni, nj, nk = (int(d) for d in np.asarray(dims).ravel()[:3])
    n_cells = ni * nj * nk
    field = np.asarray(field)
    if field.size != n_cells:
        raise PrimitiveError(
            f"field has {field.size} values but dims {ni}x{nj}x{nk} "
            f"imply {n_cells} cells")
    for name, coord, want in (("x", x, ni + 1), ("y", y, nj + 1),
                              ("z", z, nk + 1)):
        if np.asarray(coord).size != want:
            raise PrimitiveError(
                f"{name} has {np.asarray(coord).size} points; expected {want}")
    f = field.reshape(ni, nj, nk)
    out = np.zeros((n_cells, VECTOR_WIDTH), dtype=field.dtype)
    out[:, 0] = _axis_derivative(f, cell_centers(x), 0).ravel()
    out[:, 1] = _axis_derivative(f, cell_centers(y), 1).ravel()
    out[:, 2] = _axis_derivative(f, cell_centers(z), 2).ravel()
    return out


# Shared axis-derivative helper, depended on by every mesh operator
# (grad3d here; div3d/curl3d/laplace3d in mesh_ops).
AXIS_HELPER_CL = """
/* Cell-center coordinate along one axis from the point coordinates. */
inline {T} dfg_cell_center(__global const {T}* pts, const int idx)
{{
    return ({T})0.5 * (pts[idx] + pts[idx + 1]);
}}

/*
 * Derivative of a cell-centered field along one logical axis of a 3D
 * rectilinear mesh: central difference with respect to the (possibly
 * non-uniform) cell-center spacing in the interior, first-order one-sided
 * difference on the two boundary layers, zero for degenerate axes.
 */
inline {T} dfg_grad3d_axis(__global const {T}* f,
                           __global const {T}* pts,
                           const int idx, const int n,
                           const long stride, const long base)
{{
    if (n == 1)
    {{
        /* degenerate axis: no neighbours to difference against */
        return ({T})0;
    }}
    if (idx == 0)
    {{
        const {T} c_0 = dfg_cell_center(pts, 0);
        const {T} c_p = dfg_cell_center(pts, 1);
        return (f[base + stride] - f[base]) / (c_p - c_0);
    }}
    if (idx == n - 1)
    {{
        const {T} c_m = dfg_cell_center(pts, n - 2);
        const {T} c_0 = dfg_cell_center(pts, n - 1);
        return (f[base] - f[base - stride]) / (c_0 - c_m);
    }}
    {{
        const {T} c_m = dfg_cell_center(pts, idx - 1);
        const {T} c_p = dfg_cell_center(pts, idx + 1);
        return (f[base + stride] - f[base - stride]) / (c_p - c_m);
    }}
}}
"""

# The grad3d entry helper (the paper: "over 50 lines of OpenCL source"
# together with its axis machinery).  A work-item computes the gradient
# for its own cell, reading neighbour values straight from the global
# field array — the "direct access to device global memory" path.
_GRAD3D_CL = """
/*
 * grad3d: gradient of a cell-centered scalar field on a 3D rectilinear
 * mesh.  dims holds the cell counts (ni, nj, nk); x/y/z are the point
 * coordinate arrays (lengths ni+1, nj+1, nk+1).  Cells are stored in
 * C order with k fastest: gid = (i * nj + j) * nk + k.  The result is a
 * 3-component vector in a {T4}; the fourth lane is zero padding.
 */
inline {T4} dfg_grad3d(__global const {T}* f,
                       __global const int* dims,
                       __global const {T}* x,
                       __global const {T}* y,
                       __global const {T}* z,
                       const size_t gid)
{{
    const int ni = dims[0];
    const int nj = dims[1];
    const int nk = dims[2];
    const int k = (int)(gid % nk);
    const int j = (int)((gid / nk) % nj);
    const int i = (int)(gid / ((long)nk * nj));
    const long base = (long)gid;
    {T4} g;
    g.s0 = dfg_grad3d_axis(f, x, i, ni, (long)nj * nk, base);
    g.s1 = dfg_grad3d_axis(f, y, j, nj, (long)nk, base);
    g.s2 = dfg_grad3d_axis(f, z, k, nk, (long)1, base);
    g.s3 = ({T})0;
    return g;
}}
"""

GRAD3D = Primitive(
    name="grad3d", arity=5,
    result_kind=ResultKind.VECTOR,
    call_style=CallStyle.GLOBAL,
    flops_per_element=30,
    cl_name="dfg_grad3d",
    cl_source=_GRAD3D_CL,
    cl_call="dfg_grad3d({a0}, {a1}, {a2}, {a3}, {a4}, gid)",
    numpy_fn=grad3d_numpy,
    cl_deps=(("dfg_grad3d_axis", AXIS_HELPER_CL),),
)
