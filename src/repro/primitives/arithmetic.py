"""Elementwise arithmetic primitives: +, -, *, /, unary negation.

Each is a one-line OpenCL helper function shared by all execution
strategies, with a matching vectorized NumPy implementation.  The NumPy
functions broadcast, so the same primitive serves scalar-scalar,
scalar-field, and field-field applications (as the paper's constants do).
"""

from __future__ import annotations

import numpy as np

from .base import CallStyle, Primitive, ResultKind

__all__ = ["ADD", "SUB", "MULT", "DIV", "NEG", "ARITHMETIC_PRIMITIVES"]


def _binary(name: str, op: str, fn, *, commutative: bool,
            flops: int = 1) -> Primitive:
    return Primitive(
        name=name,
        arity=2,
        result_kind=ResultKind.SCALAR,
        call_style=CallStyle.ELEMENTWISE,
        flops_per_element=flops,
        cl_name=f"dfg_{name}",
        cl_source=(
            f"inline {{T}} dfg_{name}(const {{T}} a, const {{T}} b)\n"
            f"{{{{ return a {op} b; }}}}"),
        cl_call=f"dfg_{name}({{a0}}, {{a1}})",
        numpy_fn=fn,
        commutative=commutative,
    )


ADD = _binary("add", "+", lambda a, b: np.add(a, b), commutative=True)
SUB = _binary("sub", "-", lambda a, b: np.subtract(a, b), commutative=False)
MULT = _binary("mult", "*", lambda a, b: np.multiply(a, b), commutative=True)
DIV = _binary("div", "/", lambda a, b: np.divide(a, b), commutative=False,
              flops=4)

NEG = Primitive(
    name="neg",
    arity=1,
    result_kind=ResultKind.SCALAR,
    call_style=CallStyle.ELEMENTWISE,
    flops_per_element=1,
    cl_name="dfg_neg",
    cl_source="inline {T} dfg_neg(const {T} a)\n{{ return -a; }}",
    cl_call="dfg_neg({a0})",
    numpy_fn=lambda a: np.negative(a),
)

ARITHMETIC_PRIMITIVES = (ADD, SUB, MULT, DIV, NEG)
