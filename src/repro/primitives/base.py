"""Primitive metadata — the paper's "common library of building blocks".

Section III-B3: *"we implemented a set of basic primitives that act as
flexible building blocks ... These building blocks are small OpenCL source
functions that are written once and shared by all execution strategies.
Each function contains minimal metadata to describe global memory
requirements and the return type."*

A :class:`Primitive` carries exactly that: the OpenCL helper source (written
once, shared by roundtrip/staged/fusion), the return type, per-element cost
metadata for the performance model, and a vectorized NumPy implementation
that backs simulated execution.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import PrimitiveError

__all__ = ["ResultKind", "CallStyle", "Primitive", "PrimitiveRegistry",
           "VECTOR_WIDTH"]

# Multi-component results use OpenCL vector types (double4/float4), so a
# 3-component gradient occupies 4 lanes in memory — this padding is visible
# in the paper's memory study.
VECTOR_WIDTH = 4


class ResultKind(enum.Enum):
    """Return type of a primitive, per its metadata."""

    SCALAR = "scalar"    # one value per element
    VECTOR = "vector"    # VECTOR_WIDTH values per element (double4)


class CallStyle(enum.Enum):
    """How the fusion kernel generator inlines a primitive (Section III-C3)."""

    ELEMENTWISE = "elementwise"  # per-element function call (add, sqrt, ...)
    GLOBAL = "global"            # needs direct global-array access (grad3d)
    SOURCE = "source"            # pure source-level construct (decompose)


@dataclass(frozen=True)
class Primitive:
    """One derived-field building block.

    ``numpy_fn`` computes the primitive over whole arrays: scalar fields are
    shape ``(n,)``, vector fields ``(n, VECTOR_WIDTH)``.  ``cl_source`` is
    the shared OpenCL helper-function definition with ``{T}``/``{T4}``
    placeholders for the element type, and ``cl_call`` a format string
    producing the per-element invocation in generated kernels.
    """

    name: str
    arity: int
    result_kind: ResultKind
    call_style: CallStyle
    flops_per_element: int
    cl_name: str
    cl_source: str
    cl_call: str
    numpy_fn: Optional[Callable[..., np.ndarray]] = None
    commutative: bool = False
    # Shared helper functions this primitive's source depends on, as
    # (name, template) pairs.  Primitives sharing a dep (e.g. the mesh
    # operators all using the axis-derivative helper) get exactly one copy
    # in a fused kernel, keyed by name.
    cl_deps: tuple[tuple[str, str], ...] = ()

    def result_components(self) -> int:
        return VECTOR_WIDTH if self.result_kind is ResultKind.VECTOR else 1

    def result_nbytes(self, n_elements: int, itemsize: int) -> int:
        return n_elements * itemsize * self.result_components()

    def iter_helpers(self, ctype: str):
        """Yield (name, instantiated source) for every helper this
        primitive needs, dependencies first."""
        vec = f"{ctype}{VECTOR_WIDTH}"
        for name, template in self.cl_deps:
            yield name, template.format(T=ctype, T4=vec)
        yield self.cl_name, self.cl_source.format(T=ctype, T4=vec)

    def render_source(self, ctype: str) -> str:
        """Instantiate the complete helper source (deps + own) for an
        element type — the standalone-kernel form."""
        return "\n".join(source for _, source in self.iter_helpers(ctype))

    def render_call(self, *operands: str, T: str = "double",
                    **params: object) -> str:
        """Produce the per-element call expression for generated kernels.

        ``params`` supplies compile-time node parameters referenced by the
        call template (e.g. decompose's ``component``) — the paper's
        "source-code level insertion of constants".
        """
        if len(operands) != self.arity:
            raise PrimitiveError(
                f"{self.name} expects {self.arity} operands, "
                f"got {len(operands)}")
        args: dict[str, object] = {f"a{i}": op
                                   for i, op in enumerate(operands)}
        args.update(params)
        return self.cl_call.format(T=T, **args)


class PrimitiveRegistry:
    """Name -> primitive lookup shared by the parser, dataflow network, and
    every execution strategy."""

    def __init__(self):
        self._by_name: dict[str, Primitive] = {}
        self._fingerprint: Optional[str] = None

    def register(self, primitive: Primitive) -> Primitive:
        if primitive.name in self._by_name:
            raise PrimitiveError(
                f"primitive {primitive.name!r} already registered")
        self._by_name[primitive.name] = primitive
        self._fingerprint = None
        return primitive

    def fingerprint(self) -> str:
        """A stable content hash of every registered primitive.

        Folded into :class:`~repro.strategies.plancache.PlanKey` and the
        on-disk plan cache's validity token: adding a primitive or
        changing one's implementation (its ``numpy_fn`` bytecode)
        changes the fingerprint, so plans compiled against the old
        registry — in memory or persisted by an earlier process — miss
        instead of replaying stale semantics.  Memoized; registries are
        append-only via :meth:`register`, which resets the memo.
        """
        if self._fingerprint is None:
            parts = []
            for name in sorted(self._by_name):
                primitive = self._by_name[name]
                fn = primitive.numpy_fn
                if fn is None:
                    impl = "none"
                else:
                    code = getattr(fn, "__code__", None)
                    if code is not None:
                        # Bytecode is deterministic per Python version
                        # and captures lambda bodies, unlike repr().
                        impl = code.co_code.hex()
                    else:
                        impl = getattr(fn, "__name__", repr(fn))
                parts.append((name, primitive.arity,
                              primitive.result_kind.name,
                              primitive.call_style.name, impl))
            digest = hashlib.sha256(repr(parts).encode()).hexdigest()
            self._fingerprint = digest[:16]
        return self._fingerprint

    def get(self, name: str) -> Primitive:
        try:
            return self._by_name[name]
        except KeyError:
            raise PrimitiveError(f"unknown primitive {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)
