"""Derived-field primitives — the "common library of building blocks".

Each :class:`~repro.primitives.base.Primitive` is written once (OpenCL
helper source + vectorized NumPy implementation + cost metadata) and shared
by every execution strategy, exactly as the paper prescribes.  The built-in
set covers the paper's subset (add, sub, mult, sqrt, decompose, grad3d)
plus calculator-style extensions (div, neg, abs, min/max, pow, exp, log,
comparisons, select, vec3, dot, cross, vmag).
"""

from .arithmetic import ADD, ARITHMETIC_PRIMITIVES, DIV, MULT, NEG, SUB
from .base import (CallStyle, Primitive, PrimitiveRegistry, ResultKind,
                   VECTOR_WIDTH)
from .gradient import AXIS_HELPER_CL, GRAD3D, cell_centers, grad3d_numpy
from .mesh_ops import (CURL3D, DIV3D, LAPLACE3D, MESH_PRIMITIVES,
                       curl3d_numpy, div3d_numpy, laplace3d_numpy)
from .math_ops import (ABS, EQ, EXP, GE, GT, LE, LOG, LT, MATH_PRIMITIVES,
                       MAX, MIN, NE, POW, SELECT, SQRT)
from .registry import DEFAULT_REGISTRY, default_registry
from .vector import (CROSS, DECOMPOSE, DOT, VEC3, VECTOR_PRIMITIVES, VMAG)

__all__ = [
    "CallStyle", "Primitive", "PrimitiveRegistry", "ResultKind",
    "VECTOR_WIDTH",
    "ADD", "SUB", "MULT", "DIV", "NEG", "ARITHMETIC_PRIMITIVES",
    "SQRT", "ABS", "EXP", "LOG", "MIN", "MAX", "POW",
    "LT", "GT", "LE", "GE", "EQ", "NE", "SELECT", "MATH_PRIMITIVES",
    "DECOMPOSE", "VEC3", "DOT", "CROSS", "VMAG", "VECTOR_PRIMITIVES",
    "GRAD3D", "grad3d_numpy", "cell_centers", "AXIS_HELPER_CL",
    "DIV3D", "CURL3D", "LAPLACE3D", "MESH_PRIMITIVES",
    "div3d_numpy", "curl3d_numpy", "laplace3d_numpy",
    "DEFAULT_REGISTRY", "default_registry",
]
