"""Decomposed (multi-block) dataset storage.

The paper's 3072^3 time step lives on disk as 3072 sub-grid bricks; VisIt
reads each MPI task's bricks and generates ghost data by exchanging cell
stencils with neighbours.  This module provides that storage layout — one
block file per brick plus a JSON index — and a reader that reconstructs
any block *with* its ghost layers by assembling the overlapping regions
from neighbouring brick files (memory-mapped, so only the touched pages
are read).

This is the out-of-core path for the distributed driver: each rank can
load its ghosted blocks straight from disk without the global arrays ever
existing in one address space.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Optional

import numpy as np

from ..host.visitsim.dataset import RectilinearDataset
from ..host.visitsim.ghost import BlockExtent, decompose
from .blockfile import BlockFileError, read_blockfile, write_blockfile

__all__ = ["write_decomposed", "DecomposedReader"]

_INDEX = "blocks.json"


def _block_filename(index: int) -> str:
    return f"block_{index:05d}.dfgb"


def write_decomposed(global_ds: RectilinearDataset,
                     block_dims: tuple[int, int, int], directory, *,
                     metadata: Optional[Mapping] = None) -> int:
    """Split a global dataset into brick files; returns the block count."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    extents = decompose(global_ds.dims, block_dims)
    gdims = global_ds.dims
    entries = []
    for i, extent in enumerate(extents):
        (i0, j0, k0), (bi, bj, bk) = extent.lo, extent.dims
        arrays = {
            "__x__": np.asarray(global_ds.x[i0:i0 + bi + 1]),
            "__y__": np.asarray(global_ds.y[j0:j0 + bj + 1]),
            "__z__": np.asarray(global_ds.z[k0:k0 + bk + 1]),
        }
        for name, values in global_ds.cell_fields.items():
            arrays[name] = np.ascontiguousarray(
                values.reshape(gdims)[i0:i0 + bi, j0:j0 + bj,
                                      k0:k0 + bk])
        write_blockfile(directory / _block_filename(i), arrays,
                        metadata={"lo": list(extent.lo),
                                  "dims": list(extent.dims)})
        entries.append({"file": _block_filename(i),
                        "lo": list(extent.lo),
                        "dims": list(extent.dims)})
    (directory / _INDEX).write_text(json.dumps({
        "metadata": dict(metadata or {}),
        "global_dims": list(gdims),
        "block_dims": list(block_dims),
        "fields": sorted(global_ds.cell_fields),
        "blocks": entries,
    }, indent=2))
    return len(extents)


class DecomposedReader:
    """Reads bricks — optionally with ghost layers assembled from
    neighbouring bricks."""

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        index_path = self.directory / _INDEX
        if not index_path.exists():
            raise BlockFileError(f"{self.directory}: no {_INDEX}")
        index = json.loads(index_path.read_text())
        self.metadata = index.get("metadata", {})
        self.global_dims = tuple(index["global_dims"])
        self.block_dims = tuple(index["block_dims"])
        self.fields = list(index["fields"])
        self._blocks = [
            BlockExtent(tuple(e["lo"]), tuple(e["dims"]))
            for e in index["blocks"]]
        self._files = [e["file"] for e in index["blocks"]]

    def __len__(self) -> int:
        return len(self._blocks)

    def extents(self) -> list[BlockExtent]:
        return list(self._blocks)

    def _overlapping(self, lo, hi):
        """Indices of bricks intersecting the half-open box [lo, hi)."""
        for i, extent in enumerate(self._blocks):
            if all(extent.lo[a] < hi[a] and extent.hi[a] > lo[a]
                   for a in range(3)):
                yield i

    def read_block(self, index: int, *, ghost_width: int = 0,
                   fields: Optional[list[str]] = None
                   ) -> RectilinearDataset:
        """Read brick ``index``; ghost layers come from neighbour bricks
        (clipped at the physical boundary, as VisIt's stencils are)."""
        if not 0 <= index < len(self._blocks):
            raise BlockFileError(
                f"block {index} out of range 0..{len(self._blocks) - 1}")
        target = self._blocks[index]
        wanted = list(fields) if fields is not None else self.fields
        lo = [max(0, target.lo[a] - ghost_width) for a in range(3)]
        hi = [min(self.global_dims[a], target.hi[a] + ghost_width)
              for a in range(3)]
        shape = tuple(hi[a] - lo[a] for a in range(3))

        coords = [None, None, None]
        field_data = {name: np.empty(shape, dtype=np.float64)
                      for name in wanted}
        for i in self._overlapping(lo, hi):
            extent = self._blocks[i]
            arrays, _meta = read_blockfile(
                self.directory / self._files[i],
                fields=["__x__", "__y__", "__z__", *wanted], mmap=True)
            src = [slice(max(lo[a], extent.lo[a]) - extent.lo[a],
                         min(hi[a], extent.hi[a]) - extent.lo[a])
                   for a in range(3)]
            dst = [slice(max(lo[a], extent.lo[a]) - lo[a],
                         min(hi[a], extent.hi[a]) - lo[a])
                   for a in range(3)]
            for name in wanted:
                field_data[name][tuple(dst)] = \
                    arrays[name][tuple(src)]
            for a, key in enumerate(("__x__", "__y__", "__z__")):
                if coords[a] is None and extent.lo[a] <= lo[a] \
                        and extent.hi[a] >= hi[a]:
                    start = lo[a] - extent.lo[a]
                    coords[a] = np.array(
                        arrays[key][start:start + shape[a] + 1])
        # coordinates spanning several bricks: stitch from per-axis pieces
        for a, key in enumerate(("__x__", "__y__", "__z__")):
            if coords[a] is None:
                coords[a] = self._stitch_coords(a, key, lo[a], hi[a])

        dataset = RectilinearDataset(
            x=coords[0], y=coords[1], z=coords[2],
            ghost_lo=tuple(target.lo[a] - lo[a] for a in range(3)),
            ghost_hi=tuple(hi[a] - target.hi[a] for a in range(3)))
        for name in wanted:
            dataset.cell_fields[name] = field_data[name].reshape(-1)
        return dataset

    def _stitch_coords(self, axis: int, key: str, lo: int,
                       hi: int) -> np.ndarray:
        """Assemble point coordinates [lo, hi] from bricks along an axis."""
        out = np.empty(hi - lo + 1, dtype=np.float64)
        filled = np.zeros(hi - lo + 1, dtype=bool)
        box_lo = [0, 0, 0]
        box_hi = list(self.global_dims)
        box_lo[axis], box_hi[axis] = lo, hi
        for i in self._overlapping(box_lo, box_hi):
            extent = self._blocks[i]
            arrays, _ = read_blockfile(
                self.directory / self._files[i], fields=[key], mmap=True)
            start = max(lo, extent.lo[axis])
            stop = min(hi, extent.hi[axis])
            src = slice(start - extent.lo[axis],
                        stop - extent.lo[axis] + 1)
            dst = slice(start - lo, stop - lo + 1)
            out[dst] = arrays[key][src]
            filled[dst] = True
        if not filled.all():
            raise BlockFileError(
                f"could not stitch axis-{axis} coordinates "
                f"[{lo}, {hi}] from bricks")
        return out
