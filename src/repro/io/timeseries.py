"""Time-series storage: a directory of block files plus an index.

Mirrors how the paper's host loads "a different time step": each step is
one block file; ``index.json`` records the ordering and shared metadata.
:meth:`TimeSeriesReader.dataset_loader` plugs directly into
:class:`~repro.host.visitsim.pipeline.GlobalArrayReader`, closing the loop
from simulation dump to in-situ derived-field visualization.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Optional

import numpy as np

from ..host.visitsim.dataset import RectilinearDataset
from .blockfile import BlockFileError, read_blockfile, write_blockfile

__all__ = ["TimeSeriesWriter", "TimeSeriesReader", "dataset_to_arrays",
           "arrays_to_dataset"]

_INDEX = "index.json"

# Reserved array names for mesh coordinates in a dataset dump.
_MESH_KEYS = ("__x__", "__y__", "__z__")


def dataset_to_arrays(dataset: RectilinearDataset) -> dict[str, np.ndarray]:
    """Flatten a dataset (coords + cell fields) into named arrays."""
    out = {
        "__x__": np.asarray(dataset.x),
        "__y__": np.asarray(dataset.y),
        "__z__": np.asarray(dataset.z),
    }
    for name, values in dataset.cell_fields.items():
        out[name] = values
    return out


def arrays_to_dataset(arrays: Mapping[str, np.ndarray]
                      ) -> RectilinearDataset:
    """Inverse of :func:`dataset_to_arrays`."""
    missing = [k for k in _MESH_KEYS if k not in arrays]
    if missing:
        raise BlockFileError(f"not a dataset dump: missing {missing}")
    dataset = RectilinearDataset(
        x=np.asarray(arrays["__x__"]),
        y=np.asarray(arrays["__y__"]),
        z=np.asarray(arrays["__z__"]))
    for name, values in arrays.items():
        if name not in _MESH_KEYS:
            dataset.add_field(name, np.asarray(values))
    return dataset


class TimeSeriesWriter:
    """Appends time steps to a directory."""

    def __init__(self, directory, metadata: Optional[Mapping] = None):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metadata = dict(metadata or {})
        self.steps: list[dict] = []

    def append(self, dataset: RectilinearDataset, *,
               time: Optional[float] = None) -> pathlib.Path:
        """Write one time step; returns its file path."""
        index = len(self.steps)
        filename = f"step_{index:05d}.dfgb"
        path = self.directory / filename
        write_blockfile(path, dataset_to_arrays(dataset),
                        metadata={"step": index, "time": time,
                                  "dims": list(dataset.dims)})
        self.steps.append({"file": filename, "step": index,
                           "time": time})
        self._flush_index()
        return path

    def _flush_index(self) -> None:
        (self.directory / _INDEX).write_text(json.dumps({
            "metadata": self.metadata,
            "steps": self.steps,
        }, indent=2))


class TimeSeriesReader:
    """Reads time steps written by :class:`TimeSeriesWriter`."""

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        index_path = self.directory / _INDEX
        if not index_path.exists():
            raise BlockFileError(f"{self.directory}: no {_INDEX}")
        index = json.loads(index_path.read_text())
        self.metadata = index.get("metadata", {})
        self.steps = index["steps"]

    def __len__(self) -> int:
        return len(self.steps)

    def times(self) -> list[Optional[float]]:
        return [s.get("time") for s in self.steps]

    def read_step(self, step: int, *, mmap: bool = False
                  ) -> RectilinearDataset:
        if not 0 <= step < len(self.steps):
            raise BlockFileError(
                f"step {step} out of range 0..{len(self.steps) - 1}")
        path = self.directory / self.steps[step]["file"]
        arrays, _meta = read_blockfile(path, mmap=mmap)
        return arrays_to_dataset(arrays)

    def dataset_loader(self, *, mmap: bool = False):
        """A ``loader(timestep)`` callable for ``GlobalArrayReader``."""
        def loader(timestep: int) -> RectilinearDataset:
            return self.read_step(timestep, mmap=mmap)
        return loader
