"""Disk I/O substrate: the block-file format and time-series containers
the VisIt-like host reads its steps from."""

from .blockfile import (BlockFileError, MAGIC, VERSION, read_blockfile,
                        read_header, write_blockfile)
from .decomposed import DecomposedReader, write_decomposed
from .timeseries import (TimeSeriesReader, TimeSeriesWriter,
                         arrays_to_dataset, dataset_to_arrays)

__all__ = ["BlockFileError", "MAGIC", "VERSION", "read_blockfile",
           "read_header", "write_blockfile", "TimeSeriesReader",
           "TimeSeriesWriter", "arrays_to_dataset", "dataset_to_arrays",
           "DecomposedReader", "write_decomposed"]
