"""A simple binary block-file format for mesh data ("brick of values").

The paper's host application (VisIt) reads each time step's sub-grid
bricks from disk.  This module provides that substrate: a self-describing
single-file container for named arrays plus JSON metadata, with an
optional memory-mapped read path so a 2.6 GB field can be consumed without
a copy — the data-movement discipline the paper is about, applied to I/O.

Layout::

    magic   b"DFGB"
    version u32 little-endian
    hlen    u64 little-endian, JSON header byte length
    header  UTF-8 JSON: {"metadata": {...},
                         "arrays": [{name, dtype, shape, offset, nbytes}]}
    payload raw C-order array bytes at the stated offsets
"""

from __future__ import annotations

import json
import pathlib
import struct
from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import ReproError

__all__ = ["BlockFileError", "write_blockfile", "read_blockfile",
           "read_header", "MAGIC", "VERSION"]

MAGIC = b"DFGB"
VERSION = 1
_PREFIX = struct.Struct("<4sIQ")


class BlockFileError(ReproError):
    """Malformed or mismatched block file."""


def write_blockfile(path, arrays: Mapping[str, np.ndarray],
                    metadata: Optional[Mapping] = None) -> int:
    """Write named arrays (+ JSON-serializable metadata); returns bytes
    written."""
    if not arrays:
        raise BlockFileError("refusing to write a block file with no arrays")
    entries = []
    offset = 0
    normalized: list[np.ndarray] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        normalized.append(array)
        entries.append({
            "name": str(name),
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": array.nbytes,
        })
        offset += array.nbytes
    header = json.dumps({"metadata": dict(metadata or {}),
                         "arrays": entries}).encode("utf-8")
    path = pathlib.Path(path)
    with open(path, "wb") as handle:
        handle.write(_PREFIX.pack(MAGIC, VERSION, len(header)))
        handle.write(header)
        for array in normalized:
            handle.write(array.tobytes())
    return _PREFIX.size + len(header) + offset


def read_header(path) -> dict:
    """Read just the JSON header (cheap for huge files)."""
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise BlockFileError(f"{path}: truncated prefix")
        magic, version, hlen = _PREFIX.unpack(prefix)
        if magic != MAGIC:
            raise BlockFileError(f"{path}: bad magic {magic!r}")
        if version != VERSION:
            raise BlockFileError(
                f"{path}: unsupported version {version} (expected "
                f"{VERSION})")
        header = handle.read(hlen)
        if len(header) != hlen:
            raise BlockFileError(f"{path}: truncated header")
    try:
        parsed = json.loads(header)
    except json.JSONDecodeError as exc:
        raise BlockFileError(f"{path}: corrupt header: {exc}") from exc
    if "arrays" not in parsed:
        raise BlockFileError(f"{path}: header missing 'arrays'")
    return parsed


def read_blockfile(path, fields: Optional[Sequence[str]] = None, *,
                   mmap: bool = False) -> tuple[dict[str, np.ndarray],
                                                dict]:
    """Read arrays (all, or just ``fields``) and metadata.

    ``mmap=True`` returns read-only views backed by the file — no copy,
    the in-situ-friendly path for multi-gigabyte bricks.
    """
    header = read_header(path)
    by_name = {e["name"]: e for e in header["arrays"]}
    wanted = list(fields) if fields is not None else list(by_name)
    missing = [name for name in wanted if name not in by_name]
    if missing:
        raise BlockFileError(
            f"{path}: missing arrays {missing}; has {sorted(by_name)}")

    with open(path, "rb") as handle:
        _, _, hlen = _PREFIX.unpack(handle.read(_PREFIX.size))
        handle.seek(0, 2)
        file_size = handle.tell()
    payload_start = _PREFIX.size + hlen

    arrays: dict[str, np.ndarray] = {}
    for name in wanted:
        entry = by_name[name]
        start = payload_start + entry["offset"]
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        if start + entry["nbytes"] > file_size:
            raise BlockFileError(
                f"{path}: array {name!r} extends past end of file")
        if mmap:
            view = np.memmap(path, dtype=dtype, mode="r", offset=start,
                             shape=shape)
            arrays[name] = view
        else:
            with open(path, "rb") as handle:
                handle.seek(start)
                data = handle.read(entry["nbytes"])
            if len(data) != entry["nbytes"]:
                raise BlockFileError(f"{path}: array {name!r} truncated")
            arrays[name] = np.frombuffer(data, dtype=dtype).reshape(shape)
    return arrays, header.get("metadata", {})
