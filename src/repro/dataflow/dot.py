"""Graphviz DOT rendering of dataflow networks (the paper's Fig 4).

Fig 4 *is* a drawing of the Q-criterion dataflow network; this module
regenerates it (``benchmarks/bench_fig4_network.py`` writes the artifact).
Sources render as ellipses, constants as diamonds, filters as boxes —
matching the paper's circles-for-data / boxes-for-filters convention from
Fig 2 — with user-assigned names from assignment statements attached as
labels.
"""

from __future__ import annotations

from .spec import CONST, SOURCE, NetworkSpec

__all__ = ["render_dot"]


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def render_dot(spec: NetworkSpec, *, graph_name: str = "network") -> str:
    """Emit a Graphviz digraph for a network specification."""
    alias_of: dict[str, list[str]] = {}
    for user_name, node_id in spec.aliases.items():
        alias_of.setdefault(node_id, []).append(user_name)
    outputs = set(spec.outputs)

    lines = [f'digraph "{_escape(graph_name)}" {{',
             "    rankdir=TB;",
             '    node [fontname="Helvetica", fontsize=11];']
    for node in spec.nodes:
        names = alias_of.get(node.id, [])
        if node.filter == SOURCE:
            label = node.id
            shape, style = "ellipse", "filled"
            color = "#cfe8ff"
        elif node.filter == CONST:
            label = repr(node.param("value"))
            shape, style = "diamond", "filled"
            color = "#fff2bf"
        else:
            label = node.filter
            component = node.param("component")
            if component is not None:
                label = f"{label}[{component}]"
            if names:
                label += "\\n" + ", ".join(sorted(names))
            shape, style = "box", "rounded,filled"
            color = "#e8ffe8" if node.id not in outputs else "#ffd9d9"
        lines.append(
            f'    "{node.id}" [label="{_escape(label)}", shape={shape}, '
            f'style="{style}", fillcolor="{color}"];')
    for node in spec.nodes:
        for input_id in node.inputs:
            lines.append(f'    "{input_id}" -> "{node.id}";')
    for output in spec.outputs:
        lines.append(
            f'    "__result__" [label="derived field", shape=ellipse, '
            f'style="filled", fillcolor="#cfe8ff"];')
        lines.append(f'    "{output}" -> "__result__";')
    lines.append("}")
    return "\n".join(lines) + "\n"
