"""Graphviz DOT rendering of dataflow networks (the paper's Fig 4).

Fig 4 *is* a drawing of the Q-criterion dataflow network; this module
regenerates it (``benchmarks/bench_fig4_network.py`` writes the artifact).
Sources render as ellipses, constants as diamonds, filters as boxes —
matching the paper's circles-for-data / boxes-for-filters convention from
Fig 2 — with user-assigned names from assignment statements attached as
labels.

Passing ``trace=`` (a :class:`~repro.trace.Tracer` from a traced run, or
its device spans) annotates each filter box with the modeled time of its
kernel launches, so the hot filters are visible directly on the graph.
"""

from __future__ import annotations

from typing import Optional

from .spec import CONST, SOURCE, NetworkSpec

__all__ = ["render_dot"]


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def _kernel_timings(trace) -> dict[str, tuple[int, float]]:
    """kernel name -> (launches, total modeled seconds) from a traced run.

    ``trace`` is a Tracer (its ``device_spans`` are used) or any iterable
    of :class:`~repro.trace.DeviceSpan`.
    """
    spans = getattr(trace, "device_spans", trace)
    timings: dict[str, tuple[int, float]] = {}
    for span in spans:
        if span.category != "kernel":
            continue
        count, total = timings.get(span.name, (0, 0.0))
        timings[span.name] = (count + 1, total + span.duration)
    return timings


def _node_timing(filter_name: str,
                 timings: dict[str, tuple[int, float]],
                 ) -> Optional[tuple[int, float]]:
    """Aggregate of the kernels generated for one filter (``k_<filter>``
    exactly, or with an argument-kind tag suffix ``k_<filter>_<tag>``)."""
    exact = f"k_{filter_name}"
    prefix = exact + "_"
    count, total = 0, 0.0
    for name, (n, seconds) in timings.items():
        if name == exact or name.startswith(prefix):
            count += n
            total += seconds
    return (count, total) if count else None


def render_dot(spec: NetworkSpec, *, graph_name: str = "network",
               trace=None) -> str:
    """Emit a Graphviz digraph for a network specification.

    With ``trace`` (a Tracer or device spans from a traced run), filter
    boxes gain a modeled-time annotation and fused-kernel time (which has
    no single owning node) is reported on a graph label.
    """
    timings = _kernel_timings(trace) if trace is not None else {}
    alias_of: dict[str, list[str]] = {}
    for user_name, node_id in spec.aliases.items():
        alias_of.setdefault(node_id, []).append(user_name)
    outputs = set(spec.outputs)

    lines = [f'digraph "{_escape(graph_name)}" {{',
             "    rankdir=TB;",
             '    node [fontname="Helvetica", fontsize=11];']
    for node in spec.nodes:
        names = alias_of.get(node.id, [])
        if node.filter == SOURCE:
            label = node.id
            shape, style = "ellipse", "filled"
            color = "#cfe8ff"
        elif node.filter == CONST:
            label = repr(node.param("value"))
            shape, style = "diamond", "filled"
            color = "#fff2bf"
        else:
            label = node.filter
            component = node.param("component")
            if component is not None:
                label = f"{label}[{component}]"
            if names:
                label += "\\n" + ", ".join(sorted(names))
            timing = _node_timing(node.filter, timings)
            if timing is not None:
                count, total = timing
                label += (f"\\n{total * 1e3:.3f} ms"
                          + (f" ({count} launches)" if count > 1 else ""))
            shape, style = "box", "rounded,filled"
            color = "#e8ffe8" if node.id not in outputs else "#ffd9d9"
        lines.append(
            f'    "{node.id}" [label="{_escape(label)}", shape={shape}, '
            f'style="{style}", fillcolor="{color}"];')
    for node in spec.nodes:
        for input_id in node.inputs:
            lines.append(f'    "{input_id}" -> "{node.id}";')
    for output in spec.outputs:
        lines.append(
            f'    "__result__" [label="derived field", shape=ellipse, '
            f'style="filled", fillcolor="#cfe8ff"];')
        lines.append(f'    "{output}" -> "__result__";')
    # Fused kernels span many nodes at once, so their time has no single
    # box to land on — report it as a graph label instead.
    fused = [(name, count, total)
             for name, (count, total) in sorted(timings.items())
             if name.startswith("k_fused")]
    if fused:
        parts = [f"{name}: {total * 1e3:.3f} ms"
                 + (f" ({count} launches)" if count > 1 else "")
                 for name, count, total in fused]
        lines.append(f'    label="fused kernels: '
                     f'{_escape("; ".join(parts))}";')
        lines.append("    labelloc=b;")
    lines.append("}")
    return "\n".join(lines) + "\n"
