"""Render a network specification as an inspectable Python script.

Section III-B1: *"The process optionally creates a Python script that
outlines all API calls, which can be inspected by the user."*  The emitted
script is runnable: executing it rebuilds an equivalent
:class:`~repro.dataflow.spec.NetworkSpec` named ``net``.
"""

from __future__ import annotations

from .spec import CONST, SOURCE, NetworkSpec

__all__ = ["render_script"]


def render_script(spec: NetworkSpec) -> str:
    """Emit the create-and-connect API calls that rebuild ``spec``."""
    lines = [
        "# Auto-generated dataflow network definition.",
        "# Running this script rebuilds the network as `net`.",
        "from repro.dataflow import NetworkSpec",
        "",
        "net = NetworkSpec()",
    ]
    id_to_var: dict[str, str] = {}
    for i, node in enumerate(spec.nodes):
        var = f"n{i}"
        id_to_var[node.id] = var
        if node.filter == SOURCE:
            lines.append(f"{var} = net.add_source({node.id!r})")
        elif node.filter == CONST:
            lines.append(f"{var} = net.add_const({node.param('value')!r})")
        else:
            inputs = ", ".join(id_to_var[i] for i in node.inputs)
            params = {k: v for k, v in node.params}
            if params:
                lines.append(
                    f"{var} = net.add_filter({node.filter!r}, [{inputs}], "
                    f"params={params!r})")
            else:
                lines.append(
                    f"{var} = net.add_filter({node.filter!r}, [{inputs}])")
    for user_name, node_id in spec.aliases.items():
        lines.append(f"net.alias({user_name!r}, {id_to_var[node_id]})")
    for output in spec.outputs:
        lines.append(f"net.set_output({id_to_var[output]})")
    return "\n".join(lines) + "\n"
