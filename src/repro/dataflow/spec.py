"""Dataflow network specification — the parser's output and the
"create and connect" user API.

Section III-B1: *"Our system provides a network definition API that
reflects the 'create and connect' modality of the dataflow paradigm. Our
front-end parser uses this API to construct a dataflow network specification
that realizes the user's expression ... The API can also be used directly
from Python, by a user or by a host application."*

A :class:`NetworkSpec` is an ordered list of :class:`NodeSpec`:

* ``source`` nodes name external input arrays (mesh fields, coordinates,
  ``dims``);
* ``const`` nodes carry literal values, pooled so each distinct constant
  appears once ("common constants are reduced to single instances of source
  filters");
* filter nodes apply a primitive to the outputs of earlier nodes.

Filter invocations get generic names (``op0000``, ``op0001``, ...) when
encountered; assignment statements map user names onto them via
:meth:`NetworkSpec.alias`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional

from ..errors import NetworkError

__all__ = ["NodeSpec", "NetworkSpec", "SOURCE", "CONST"]

SOURCE = "source"
CONST = "const"


@dataclass(frozen=True)
class NodeSpec:
    """One node of a network specification."""

    id: str
    filter: str                      # SOURCE, CONST, or a primitive name
    inputs: tuple[str, ...] = ()
    params: tuple[tuple[str, object], ...] = ()

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def signature(self) -> tuple:
        """Structural identity used by common-subexpression elimination."""
        return (self.filter, self.inputs, self.params)


class NetworkSpec:
    """An ordered, append-only network under construction."""

    def __init__(self):
        self.nodes: list[NodeSpec] = []
        self._by_id: dict[str, NodeSpec] = {}
        self.aliases: dict[str, str] = {}
        self.outputs: list[str] = []
        self._counter = 0
        self._const_pool: dict[object, str] = {}

    # -- construction -------------------------------------------------------

    def _fresh_id(self) -> str:
        node_id = f"op{self._counter:04d}"
        self._counter += 1
        return node_id

    def _append(self, node: NodeSpec) -> str:
        if node.id in self._by_id:
            raise NetworkError(f"duplicate node id {node.id!r}")
        self.nodes.append(node)
        self._by_id[node.id] = node
        return node.id

    def add_source(self, name: str) -> str:
        """Declare an external input array.  Idempotent per name."""
        if name in self._by_id and self._by_id[name].filter == SOURCE:
            return name
        return self._append(NodeSpec(name, SOURCE))

    def add_const(self, value: float) -> str:
        """Add a literal constant, pooled across the whole network."""
        key = repr(value)
        if key in self._const_pool:
            return self._const_pool[key]
        node_id = self._append(NodeSpec(
            self._fresh_id(), CONST, params=(("value", value),)))
        self._const_pool[key] = node_id
        return node_id

    def add_filter(self, filter_name: str, inputs: Iterable[str],
                   params: Optional[Mapping[str, object]] = None) -> str:
        """Append a filter invocation and return its generic name."""
        inputs = tuple(inputs)
        for input_id in inputs:
            if input_id not in self._by_id:
                raise NetworkError(
                    f"filter {filter_name!r} references unknown node "
                    f"{input_id!r}")
        node_params = tuple(sorted((params or {}).items()))
        return self._append(NodeSpec(
            self._fresh_id(), filter_name, inputs, node_params))

    def alias(self, user_name: str, node_id: str) -> None:
        """Map an assignment-statement name onto a node."""
        if node_id not in self._by_id:
            raise NetworkError(f"alias to unknown node {node_id!r}")
        self.aliases[user_name] = node_id

    def set_output(self, node_id: str) -> None:
        resolved = self.resolve(node_id)
        if resolved not in self.outputs:
            self.outputs.append(resolved)

    # -- queries --------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Resolve a user name or node id to a node id."""
        if name in self.aliases:
            return self.aliases[name]
        if name in self._by_id:
            return name
        raise NetworkError(f"unknown node or alias {name!r}")

    def node(self, node_id: str) -> NodeSpec:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def source_names(self) -> list[str]:
        return [n.id for n in self.nodes if n.filter == SOURCE]

    def filter_nodes(self) -> list[NodeSpec]:
        return [n for n in self.nodes if n.filter not in (SOURCE, CONST)]

    def __len__(self) -> int:
        return len(self.nodes)

    # -- rewriting (used by the optimizer) ------------------------------------

    def rewrite(self, keep: Iterable[str],
                replacement: Mapping[str, str]) -> "NetworkSpec":
        """Return a new spec keeping only ``keep`` nodes, with every input
        reference passed through ``replacement`` (old id -> surviving id)."""
        keep_set = set(keep)
        out = NetworkSpec()
        out._counter = self._counter
        for node in self.nodes:
            if node.id not in keep_set:
                continue
            remapped = replace(node, inputs=tuple(
                replacement.get(i, i) for i in node.inputs))
            out._append(remapped)
            if node.filter == CONST:
                out._const_pool[repr(node.param("value"))] = node.id
        for user_name, node_id in self.aliases.items():
            target = replacement.get(node_id, node_id)
            if target in out._by_id:
                out.aliases[user_name] = target
        for output in self.outputs:
            out.set_output(replacement.get(output, output))
        return out
