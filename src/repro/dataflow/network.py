"""Executable dataflow network: validation, topological sort, reference
counts, and result-kind inference.

Section III-B2: *"Executing a dataflow network requires understanding the
dependencies between filters. Our dataflow network module uses a topological
sort to ensure proper precedence. It provides reference counting and reuses
intermediate results multiple times to avoid unnecessary computation and
reduce memory overhead."*

The network itself is strategy-agnostic: execution strategies walk
:meth:`Network.schedule` and use :meth:`Network.refcounts` to free device
buffers as soon as their last consumer has run — the mechanism behind the
distinct memory footprints in the paper's Fig 2 and Fig 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from graphlib import CycleError, TopologicalSorter
from typing import Optional

from ..errors import NetworkError
from ..primitives.base import CallStyle, PrimitiveRegistry, ResultKind
from ..primitives.registry import DEFAULT_REGISTRY
from .spec import CONST, SOURCE, NetworkSpec, NodeSpec

__all__ = ["Network", "NodeInfo"]


@dataclass(frozen=True)
class NodeInfo:
    """A validated node with its inferred result kind."""

    spec: NodeSpec
    kind: ResultKind
    consumers: int


class Network:
    """A validated, schedulable dataflow network."""

    def __init__(self, spec: NetworkSpec,
                 registry: Optional[PrimitiveRegistry] = None, *,
                 source_kinds: Optional[dict[str, ResultKind]] = None):
        self.spec = spec
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._source_kinds = source_kinds or {}
        if not spec.outputs:
            raise NetworkError("network has no output node")
        self._order = self._toposort()
        self._refcounts = self._count_consumers()
        self._kinds = self._infer_kinds()
        self._uniform = self._infer_uniform()
        self._validate()
        self._live_sources = tuple(
            node_id for node_id in self._order
            if self.spec.node(node_id).filter == SOURCE)

    # -- construction helpers ------------------------------------------------

    def _toposort(self) -> list[str]:
        graph = {n.id: set(n.inputs) for n in self.spec.nodes}
        sorter = TopologicalSorter(graph)
        try:
            order = list(sorter.static_order())
        except CycleError as exc:
            raise NetworkError(f"network contains a cycle: {exc}") from exc
        # Restrict to nodes actually reachable from the outputs so dead
        # assignments cost nothing (the refcount/reuse design).
        live: set[str] = set()
        stack = [self.spec.resolve(o) for o in self.spec.outputs]
        while stack:
            node_id = stack.pop()
            if node_id in live:
                continue
            live.add(node_id)
            stack.extend(self.spec.node(node_id).inputs)
        return [node_id for node_id in order if node_id in live]

    def _count_consumers(self) -> dict[str, int]:
        counts = {node_id: 0 for node_id in self._order}
        for node_id in self._order:
            for input_id in self.spec.node(node_id).inputs:
                counts[input_id] += 1
        for output in self.spec.outputs:
            counts[self.spec.resolve(output)] += 1
        return counts

    def _infer_kinds(self) -> dict[str, ResultKind]:
        kinds: dict[str, ResultKind] = {}
        for node_id in self._order:
            node = self.spec.node(node_id)
            if node.filter == SOURCE:
                kinds[node_id] = self._source_kinds.get(
                    node_id, ResultKind.SCALAR)
            elif node.filter == CONST:
                kinds[node_id] = ResultKind.SCALAR
            else:
                kinds[node_id] = self.registry.get(node.filter).result_kind
        return kinds

    def _infer_uniform(self) -> dict[str, bool]:
        """A node is *uniform* when its value is one number per problem
        (constants and elementwise combinations of constants).  Uniform
        values occupy single-element device buffers and broadcast."""
        uniform: dict[str, bool] = {}
        for node_id in self._order:
            node = self.spec.node(node_id)
            if node.filter == CONST:
                uniform[node_id] = True
            elif node.filter == SOURCE:
                uniform[node_id] = False
            else:
                primitive = self.registry.get(node.filter)
                uniform[node_id] = (
                    primitive.call_style is not CallStyle.GLOBAL
                    and all(uniform[i] for i in node.inputs))
        return uniform

    def _validate(self) -> None:
        for node_id in self._order:
            node = self.spec.node(node_id)
            if node.filter in (SOURCE, CONST):
                continue
            primitive = self.registry.get(node.filter)  # raises if unknown
            if (primitive.call_style is CallStyle.GLOBAL and node.inputs
                    and self._uniform[node.inputs[0]]):
                raise NetworkError(
                    f"{node.filter!r} node {node_id} applies a stencil to "
                    "a uniform (constant-valued) expression; bind a field "
                    "instead")
            if len(node.inputs) != primitive.arity:
                raise NetworkError(
                    f"{node.filter!r} node {node_id} has "
                    f"{len(node.inputs)} inputs; primitive arity is "
                    f"{primitive.arity}")
            if node.filter == "decompose":
                input_kind = self._kinds[node.inputs[0]]
                if input_kind is not ResultKind.VECTOR:
                    raise NetworkError(
                        f"decompose node {node_id} applied to non-vector "
                        f"input {node.inputs[0]!r}")

    # -- public surface --------------------------------------------------------

    def schedule(self) -> list[NodeSpec]:
        """Live nodes in dependency order."""
        return [self.spec.node(node_id) for node_id in self._order]

    def refcounts(self) -> dict[str, int]:
        """Consumer counts per node (outputs count as one extra consumer),
        for copy-free intermediate reuse and eager buffer release."""
        return dict(self._refcounts)

    def kind_of(self, node_id: str) -> ResultKind:
        return self._kinds[node_id]

    def uniform(self, node_id: str) -> bool:
        """Whether a node's value is one number per problem (broadcast)."""
        return self._uniform[node_id]

    def output_ids(self) -> list[str]:
        return [self.spec.resolve(o) for o in self.spec.outputs]

    def live_sources(self) -> list[str]:
        return list(self._live_sources)

    def n_filters(self) -> int:
        return sum(1 for node_id in self._order
                   if self.spec.node(node_id).filter not in (SOURCE, CONST))

    def __len__(self) -> int:
        return len(self._order)
