"""Python dataflow network (Section III-B).

``NetworkSpec`` is the create-and-connect definition API the parser targets
(and that hosts may drive directly); ``Network`` validates a spec, resolves
dependencies with a topological sort, and exposes the reference counts the
execution strategies use to reuse and release intermediates.
"""

from .dot import render_dot
from .network import Network, NodeInfo
from .script import render_script
from .spec import CONST, SOURCE, NetworkSpec, NodeSpec

__all__ = ["Network", "NodeInfo", "render_dot", "render_script",
           "CONST", "SOURCE", "NetworkSpec", "NodeSpec"]
